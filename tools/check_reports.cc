// Validates the artifacts a bench binary or sweep wrote:
//
//   $ check_reports <report-dir> [trace-dir]
//                   [--metrics <metrics.json> --index <sweep_index.json>]
//
// Every *.json in <report-dir> must parse as a RunReport of schema
// smt-run-report/1, /2, /3 or /4 and carry the required fields (per-CPU
// events + cycle breakdown). Schema /2 reports additionally carry a
// `timeseries` section whose per-window counter deltas are checked to sum
// exactly to the end-of-run per-CPU totals — the key invariant of the
// windowed sampler under both event-skip modes. Schema /3 reports carry a
// `profile` section (timeseries optional) whose per-PC attributions are
// checked to sum exactly to the counter totals (retired instrs/uops,
// L1/L2 misses, the four counter-backed stall reasons) and whose port
// occupancy is bounded by the per-cycle port caps times run cycles.
// Schema /4 reports carry an `interference` section (profile/timeseries
// optional) whose self+sibling stall attributions are checked to sum
// exactly to the four counter-backed stall counters, whose port-conflict
// decomposition must sum to the port_conflict reason totals, and whose
// per-port blame is bounded by the run cycle count (one blocked uop is
// tracked per context per cycle).
//
// With --dumps <dir>, every *.json there must parse as an
// smt-core-dump/1 post-mortem document (per-CPU architectural state,
// monotonic retirement ring, well-formed wait states and wait-for edges).
//
// When <trace-dir> is given, every *.trace.json there must parse as a
// Chrome trace-event document (object form with a `traceEvents` array of
// well-formed events) — the format Perfetto / chrome://tracing load.
//
// With --metrics/--index (always paired), the smt-sweep-metrics/1
// snapshot is cross-checked against the smt-sweep-index/1 it was written
// beside: the pool counters must be arithmetically consistent with the
// index's per-job outcomes and attempt counts (see check_sweep_metrics).
//
// With --lint-report <file>, the file must parse as a smt-lint-report/1
// document (smt_lint --format=json): well-formed experiment/program/
// diagnostic nesting, every severity either "error" or "warning", and a
// totals object that exactly reproduces the recounted sums.
//
// Validation findings are printed as plain per-file stderr lines (they
// are the tool's product); operational failures (unreadable paths, bad
// usage) go through the structured logger. Exit status: 0 ok; 1 any
// validation finding (or an empty scan); 2 usage error; 3 I/O error.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/log.h"
#include "common/types.h"
#include "cpu/core.h"
#include "perfmon/events.h"

namespace fs = std::filesystem;

namespace {

bool has_number(const smt::JsonValue& obj, const char* key) {
  const smt::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number();
}

double number_or(const smt::JsonValue& obj, const std::string& key,
                 double fallback) {
  const smt::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

// Checks that summing every window's per-CPU deltas reproduces the
// end-of-run totals in `cpus` exactly (deltas are nonzero-only, so an
// absent key counts as zero).
bool check_timeseries(const fs::path& path, const smt::JsonValue& ts,
                      const smt::JsonValue& cpus) {
  if (!has_number(ts, "window_cycles") ||
      ts.find("window_cycles")->number <= 0) {
    std::fprintf(stderr, "%s: timeseries missing positive window_cycles\n",
                 path.c_str());
    return false;
  }
  const smt::JsonValue* windows = ts.find("windows");
  if (windows == nullptr || !windows->is_array()) {
    std::fprintf(stderr, "%s: timeseries missing windows array\n",
                 path.c_str());
    return false;
  }
  // sums[cpu][event]
  double sums[smt::kNumLogicalCpus][smt::perfmon::kNumEventValues] = {};
  double prev_end = -1.0;
  for (const smt::JsonValue& win : windows->array) {
    if (!has_number(win, "begin") || !has_number(win, "end")) {
      std::fprintf(stderr, "%s: window missing begin/end\n", path.c_str());
      return false;
    }
    const double begin = win.find("begin")->number;
    const double end = win.find("end")->number;
    if (end <= begin || (prev_end >= 0.0 && begin != prev_end)) {
      std::fprintf(stderr, "%s: windows not contiguous/increasing\n",
                   path.c_str());
      return false;
    }
    prev_end = end;
    const smt::JsonValue* wcpus = win.find("cpus");
    if (wcpus == nullptr || !wcpus->is_array() ||
        wcpus->array.size() != static_cast<size_t>(smt::kNumLogicalCpus)) {
      std::fprintf(stderr, "%s: window \"cpus\" is not a %d-entry array\n",
                   path.c_str(), smt::kNumLogicalCpus);
      return false;
    }
    for (size_t i = 0; i < wcpus->array.size(); ++i) {
      const smt::JsonValue* events = wcpus->array[i].find("events");
      if (events == nullptr || !events->is_object()) {
        std::fprintf(stderr, "%s: window cpu entry missing events\n",
                     path.c_str());
        return false;
      }
      for (int e = 0; e < smt::perfmon::kNumEventValues; ++e) {
        const char* name =
            smt::perfmon::name(static_cast<smt::perfmon::Event>(e));
        sums[i][e] += number_or(*events, name, 0.0);
      }
    }
  }
  for (size_t i = 0; i < cpus.array.size(); ++i) {
    const smt::JsonValue* events = cpus.array[i].find("events");
    for (int e = 0; e < smt::perfmon::kNumEventValues; ++e) {
      const char* name =
          smt::perfmon::name(static_cast<smt::perfmon::Event>(e));
      const double total = number_or(*events, name, 0.0);
      if (sums[i][e] != total) {
        std::fprintf(stderr,
                     "%s: cpu%zu %s: window deltas sum to %.0f, total %.0f\n",
                     path.c_str(), i, name, sums[i][e], total);
        return false;
      }
    }
  }
  return true;
}

// Reads map[key] treating a missing key as 0 but rejecting non-objects.
double map_value(const smt::JsonValue* m, const char* key) {
  return m != nullptr && m->is_object() ? number_or(*m, key, 0.0) : 0.0;
}

// Checks the /3 `profile` section: per-CPU per-PC attributions must sum
// exactly to the counter totals wherever a counter backs the quantity, and
// port occupancy must both equal the per-PC port sums and respect the
// per-cycle issue caps.
bool check_profile(const fs::path& path, const smt::JsonValue& prof,
                   const smt::JsonValue& cpus, double cycles) {
  const smt::JsonValue* hotspots = prof.find("hotspots");
  const smt::JsonValue* occupancy = prof.find("port_occupancy");
  const smt::JsonValue* caps = prof.find("port_caps_per_cycle");
  if (hotspots == nullptr || !hotspots->is_array() ||
      hotspots->array.size() != static_cast<size_t>(smt::kNumLogicalCpus) ||
      occupancy == nullptr || !occupancy->is_array() ||
      occupancy->array.size() != static_cast<size_t>(smt::kNumLogicalCpus) ||
      caps == nullptr || !caps->is_object()) {
    std::fprintf(stderr,
                 "%s: profile missing hotspots/port_occupancy/"
                 "port_caps_per_cycle\n",
                 path.c_str());
    return false;
  }
  // Total port occupancy across both contexts, for the shared-cap bound.
  double port_sum_all[smt::cpu::kNumIssuePorts] = {};
  for (size_t i = 0; i < cpus.array.size(); ++i) {
    const smt::JsonValue* events = cpus.array[i].find("events");
    const smt::JsonValue* pcs = hotspots->array[i].find("pcs");
    if (pcs == nullptr || !pcs->is_array()) {
      std::fprintf(stderr, "%s: hotspots cpu%zu missing pcs array\n",
                   path.c_str(), i);
      return false;
    }
    double instrs = 0, uops = 0, l1 = 0, l2 = 0;
    double stall_sums[smt::cpu::kNumBlockReasons] = {};
    double port_sums[smt::cpu::kNumIssuePorts] = {};
    for (const smt::JsonValue& entry : pcs->array) {
      if (!has_number(entry, "pc") || entry.find("disasm") == nullptr) {
        std::fprintf(stderr, "%s: hotspot entry missing pc/disasm\n",
                     path.c_str());
        return false;
      }
      instrs += number_or(entry, "retired_instrs", 0.0);
      uops += number_or(entry, "retired_uops", 0.0);
      l1 += number_or(entry, "l1_misses", 0.0);
      l2 += number_or(entry, "l2_misses", 0.0);
      for (int r = 0; r < smt::cpu::kNumBlockReasons; ++r) {
        stall_sums[r] += map_value(
            entry.find("stalls"),
            smt::cpu::name(static_cast<smt::cpu::BlockReason>(r)));
      }
      for (int p = 0; p < smt::cpu::kNumIssuePorts; ++p) {
        port_sums[p] +=
            map_value(entry.find("ports"),
                      smt::cpu::name(static_cast<smt::cpu::IssuePort>(p)));
      }
    }
    // Counter-backed attributions must sum to the counters, exactly.
    const struct {
      const char* counter;
      double sum;
    } exact[] = {
        {"instr_retired", instrs},
        {"uops_retired", uops},
        {"l1_misses", l1},
        {"l2_misses", l2},
        {"rob_stall_cycles", stall_sums[static_cast<int>(
                                 smt::cpu::BlockReason::kRob)]},
        {"load_queue_stall_cycles",
         stall_sums[static_cast<int>(smt::cpu::BlockReason::kLoadQueue)]},
        {"store_buffer_stall_cycles",
         stall_sums[static_cast<int>(smt::cpu::BlockReason::kStoreBuffer)]},
        {"uop_queue_full_cycles",
         stall_sums[static_cast<int>(smt::cpu::BlockReason::kUopQueueFull)]},
    };
    for (const auto& [counter, sum] : exact) {
      const double total = number_or(*events, counter, 0.0);
      if (sum != total) {
        std::fprintf(stderr,
                     "%s: cpu%zu %s: per-PC sum %.0f != counter %.0f\n",
                     path.c_str(), i, counter, sum, total);
        return false;
      }
    }
    // Per-PC port sums must reproduce the port_occupancy section.
    const smt::JsonValue* occ = occupancy->array[i].find("ports");
    for (int p = 0; p < smt::cpu::kNumIssuePorts; ++p) {
      const char* pname =
          smt::cpu::name(static_cast<smt::cpu::IssuePort>(p));
      const double occ_v = map_value(occ, pname);
      if (port_sums[p] != occ_v) {
        std::fprintf(stderr,
                     "%s: cpu%zu port %s: per-PC sum %.0f != occupancy "
                     "%.0f\n",
                     path.c_str(), i, pname, port_sums[p], occ_v);
        return false;
      }
      port_sum_all[p] += occ_v;
    }
  }
  // The ports are shared between the contexts: combined occupancy cannot
  // exceed the per-cycle cap over the whole run.
  for (int p = 0; p < smt::cpu::kNumIssuePorts; ++p) {
    const char* pname = smt::cpu::name(static_cast<smt::cpu::IssuePort>(p));
    const double cap = number_or(*caps, pname, 0.0);
    if (cap <= 0) {
      std::fprintf(stderr, "%s: port cap for %s missing/nonpositive\n",
                   path.c_str(), pname);
      return false;
    }
    if (port_sum_all[p] > cap * cycles) {
      std::fprintf(stderr,
                   "%s: port %s occupancy %.0f exceeds cap %.0f x %.0f "
                   "cycles\n",
                   path.c_str(), pname, port_sum_all[p], cap, cycles);
      return false;
    }
  }
  return true;
}

// Checks the /4 `interference` section: per reason, self + sibling cycles
// must reproduce the corresponding stall counter exactly (the tentpole
// invariant of the interference profiler); the port-conflict decomposition
// must sum to the port_conflict reason totals; and no single port's blame
// can exceed the run cycle count (at most one blocked uop is tracked per
// context per cycle).
bool check_interference(const fs::path& path, const smt::JsonValue& inter,
                        const smt::JsonValue& cpus, double cycles) {
  if (!inter.is_array() ||
      inter.array.size() != static_cast<size_t>(smt::kNumLogicalCpus)) {
    std::fprintf(stderr, "%s: \"interference\" is not a %d-entry array\n",
                 path.c_str(), smt::kNumLogicalCpus);
    return false;
  }
  // The counter backing each counter-backed BlockReason (the issue-stage
  // reasons port_conflict/divider_busy have no per-CPU counter).
  const struct {
    smt::cpu::BlockReason reason;
    const char* counter;
  } backed[] = {
      {smt::cpu::BlockReason::kStoreBuffer, "store_buffer_stall_cycles"},
      {smt::cpu::BlockReason::kRob, "rob_stall_cycles"},
      {smt::cpu::BlockReason::kLoadQueue, "load_queue_stall_cycles"},
      {smt::cpu::BlockReason::kUopQueueFull, "uop_queue_full_cycles"},
  };
  for (size_t i = 0; i < inter.array.size(); ++i) {
    const smt::JsonValue& entry = inter.array[i];
    const smt::JsonValue* self = entry.find("self");
    const smt::JsonValue* sibling = entry.find("sibling");
    const smt::JsonValue* pc = entry.find("port_conflict");
    if (self == nullptr || !self->is_object() || sibling == nullptr ||
        !sibling->is_object() || pc == nullptr || !pc->is_object() ||
        !has_number(entry, "l2_sibling_evictions")) {
      std::fprintf(stderr,
                   "%s: interference cpu%zu missing self/sibling/"
                   "port_conflict/l2_sibling_evictions\n",
                   path.c_str(), i);
      return false;
    }
    const smt::JsonValue* events = cpus.array[i].find("events");
    for (const auto& [reason, counter] : backed) {
      const char* rname = smt::cpu::name(reason);
      const double sum =
          map_value(self, rname) + map_value(sibling, rname);
      const double total = number_or(*events, counter, 0.0);
      if (sum != total) {
        std::fprintf(stderr,
                     "%s: cpu%zu %s: self+sibling sum %.0f != counter %.0f\n",
                     path.c_str(), i, counter, sum, total);
        return false;
      }
    }
    // The port decomposition (ports + the issue_bandwidth bucket) must
    // account for every port_conflict cycle, side by side.
    const char* conflict = smt::cpu::name(smt::cpu::BlockReason::kPortConflict);
    const struct {
      const char* side;
      const smt::JsonValue* map;
      const smt::JsonValue* reasons;  // map whose port_conflict is the total
    } sides[] = {{"self", pc->find("self"), self},
                 {"sibling", pc->find("sibling"), sibling}};
    for (const auto& [side, map, reasons] : sides) {
      if (map == nullptr || !map->is_object()) {
        std::fprintf(stderr, "%s: cpu%zu port_conflict missing %s map\n",
                     path.c_str(), i, side);
        return false;
      }
      double sum = map_value(map, "issue_bandwidth");
      for (int p = 0; p < smt::cpu::kNumIssuePorts; ++p) {
        const char* pname =
            smt::cpu::name(static_cast<smt::cpu::IssuePort>(p));
        const double v = map_value(map, pname);
        if (v > cycles) {
          std::fprintf(stderr,
                       "%s: cpu%zu %s port %s blame %.0f exceeds %.0f "
                       "cycles\n",
                       path.c_str(), i, side, pname, v, cycles);
          return false;
        }
        sum += v;
      }
      const double total = map_value(reasons, conflict);
      if (sum != total) {
        std::fprintf(stderr,
                     "%s: cpu%zu port_conflict %s sums to %.0f, reason "
                     "total %.0f\n",
                     path.c_str(), i, side, sum, total);
        return false;
      }
    }
  }
  return true;
}

bool check_report(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object()) {
    std::fprintf(stderr, "%s: does not parse as a JSON object\n",
                 path.c_str());
    return false;
  }
  const smt::JsonValue* schema = v->find("schema");
  if (schema == nullptr || (schema->string != "smt-run-report/1" &&
                            schema->string != "smt-run-report/2" &&
                            schema->string != "smt-run-report/3" &&
                            schema->string != "smt-run-report/4")) {
    std::fprintf(stderr, "%s: missing/unknown schema\n", path.c_str());
    return false;
  }
  const bool v2 = schema->string == "smt-run-report/2";
  const bool v3 = schema->string == "smt-run-report/3";
  const bool v4 = schema->string == "smt-run-report/4";
  for (const char* key : {"workload", "cycles", "verified", "config",
                          "cpus", "totals"}) {
    if (v->find(key) == nullptr) {
      std::fprintf(stderr, "%s: missing \"%s\"\n", path.c_str(), key);
      return false;
    }
  }
  const smt::JsonValue* cpus = v->find("cpus");
  if (!cpus->is_array() ||
      cpus->array.size() != static_cast<size_t>(smt::kNumLogicalCpus)) {
    std::fprintf(stderr, "%s: \"cpus\" is not a %d-entry array\n",
                 path.c_str(), smt::kNumLogicalCpus);
    return false;
  }
  for (const smt::JsonValue& cpu : cpus->array) {
    const smt::JsonValue* events = cpu.find("events");
    const smt::JsonValue* bd = cpu.find("breakdown");
    if (events == nullptr || bd == nullptr) {
      std::fprintf(stderr, "%s: cpu entry missing events/breakdown\n",
                   path.c_str());
      return false;
    }
    for (int e = 0; e < smt::perfmon::kNumEventValues; ++e) {
      const char* name =
          smt::perfmon::name(static_cast<smt::perfmon::Event>(e));
      if (!has_number(*events, name)) {
        std::fprintf(stderr, "%s: events missing \"%s\"\n", path.c_str(),
                     name);
        return false;
      }
    }
    for (const char* key :
         {"total", "active", "halted", "fetch_stalled", "resource_stalled",
          "stall_rob", "stall_load_queue", "stall_store_buffer",
          "memory_bound", "issue_bound", "flowing", "cpi", "ipc"}) {
      if (!has_number(*bd, key)) {
        std::fprintf(stderr, "%s: breakdown missing \"%s\"\n", path.c_str(),
                     key);
        return false;
      }
    }
  }
  const smt::JsonValue* ts = v->find("timeseries");
  if (v2 && (ts == nullptr || !ts->is_object())) {
    std::fprintf(stderr, "%s: schema /2 but no timeseries object\n",
                 path.c_str());
    return false;
  }
  // /2 requires timeseries; /3 and /4 may carry it (profiled/attributed +
  // traced run); /1 must not.
  if (!v2 && !v3 && !v4 && ts != nullptr) {
    std::fprintf(stderr, "%s: schema /1 must not carry timeseries\n",
                 path.c_str());
    return false;
  }
  if (ts != nullptr && !check_timeseries(path, *ts, *cpus)) return false;
  const smt::JsonValue* prof = v->find("profile");
  if (v3 && (prof == nullptr || !prof->is_object())) {
    std::fprintf(stderr, "%s: schema /3 but no profile object\n",
                 path.c_str());
    return false;
  }
  // /3 requires profile; /4 may carry it; /1 and /2 must not.
  if (!v3 && !v4 && prof != nullptr) {
    std::fprintf(stderr, "%s: schema /%s must not carry profile\n",
                 path.c_str(), v2 ? "2" : "1");
    return false;
  }
  if (prof != nullptr &&
      !check_profile(path, *prof, *cpus, number_or(*v, "cycles", 0.0))) {
    return false;
  }
  const smt::JsonValue* inter = v->find("interference");
  if (v4 && inter == nullptr) {
    std::fprintf(stderr, "%s: schema /4 but no interference section\n",
                 path.c_str());
    return false;
  }
  if (!v4 && inter != nullptr) {
    std::fprintf(stderr, "%s: only schema /4 may carry interference\n",
                 path.c_str());
    return false;
  }
  if (v4 && !check_interference(path, *inter, *cpus,
                                number_or(*v, "cycles", 0.0))) {
    return false;
  }
  return true;
}

// Validates one smt-core-dump/1 post-mortem document (see
// src/core/flight_recorder.h): failure outcome, per-CPU architectural
// state with a cycle-monotonic retirement ring, well-formed wait states
// and wait-for edges.
bool check_dump(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object()) {
    std::fprintf(stderr, "%s: does not parse as a JSON object\n",
                 path.c_str());
    return false;
  }
  const smt::JsonValue* schema = v->find("schema");
  if (schema == nullptr || schema->string != "smt-core-dump/1") {
    std::fprintf(stderr, "%s: missing/unknown schema\n", path.c_str());
    return false;
  }
  const smt::JsonValue* outcome = v->find("outcome");
  if (outcome == nullptr || !outcome->is_string() ||
      (outcome->string != "deadlock" &&
       outcome->string != "cycle_budget_exceeded" &&
       outcome->string != "race_detected")) {
    std::fprintf(stderr, "%s: missing/unknown outcome\n", path.c_str());
    return false;
  }
  if (v->find("workload") == nullptr || v->find("message") == nullptr ||
      !has_number(*v, "cycle")) {
    std::fprintf(stderr, "%s: missing workload/message/cycle\n",
                 path.c_str());
    return false;
  }
  const double cycle = v->find("cycle")->number;
  const smt::JsonValue* cpus = v->find("cpus");
  if (cpus == nullptr || !cpus->is_array() ||
      cpus->array.size() != static_cast<size_t>(smt::kNumLogicalCpus)) {
    std::fprintf(stderr, "%s: \"cpus\" is not a %d-entry array\n",
                 path.c_str(), smt::kNumLogicalCpus);
    return false;
  }
  for (size_t i = 0; i < cpus->array.size(); ++i) {
    const smt::JsonValue& c = cpus->array[i];
    const smt::JsonValue* mode = c.find("mode");
    const smt::JsonValue* wait = c.find("wait");
    const smt::JsonValue* iregs = c.find("iregs");
    const smt::JsonValue* fregs = c.find("fregs");
    const smt::JsonValue* recent = c.find("recent_retired");
    const smt::JsonValue* snaps = c.find("snapshots");
    if (mode == nullptr || !mode->is_string() || !has_number(c, "pc") ||
        c.find("disasm") == nullptr || !has_number(c, "rob") ||
        !has_number(c, "uop_queue") || !has_number(c, "load_queue") ||
        !has_number(c, "store_buffer") || wait == nullptr ||
        !wait->is_object() || iregs == nullptr || !iregs->is_array() ||
        fregs == nullptr || !fregs->is_array() || recent == nullptr ||
        !recent->is_array() || snaps == nullptr || !snaps->is_array()) {
      std::fprintf(stderr, "%s: cpu%zu entry malformed\n", path.c_str(), i);
      return false;
    }
    const smt::JsonValue* kind = wait->find("kind");
    if (kind == nullptr || !kind->is_string() ||
        (kind->string != "halt" && kind->string != "spin" &&
         kind->string != "none")) {
      std::fprintf(stderr, "%s: cpu%zu wait.kind malformed\n", path.c_str(),
                   i);
      return false;
    }
    double prev = -1.0;
    for (const smt::JsonValue& e : recent->array) {
      if (!has_number(e, "cycle") || !has_number(e, "pc") ||
          e.find("disasm") == nullptr) {
        std::fprintf(stderr, "%s: cpu%zu recent_retired entry malformed\n",
                     path.c_str(), i);
        return false;
      }
      const double ecycle = e.find("cycle")->number;
      if (ecycle < prev || ecycle > cycle) {
        std::fprintf(stderr,
                     "%s: cpu%zu recent_retired cycles not monotonic within "
                     "the run\n",
                     path.c_str(), i);
        return false;
      }
      prev = ecycle;
    }
  }
  const smt::JsonValue* sync_words = v->find("sync_words");
  const smt::JsonValue* wait_for = v->find("wait_for");
  if (sync_words == nullptr || !sync_words->is_array() ||
      wait_for == nullptr || !wait_for->is_array()) {
    std::fprintf(stderr, "%s: missing sync_words/wait_for arrays\n",
                 path.c_str());
    return false;
  }
  for (const smt::JsonValue& e : wait_for->array) {
    const smt::JsonValue* why = e.find("why");
    if (!has_number(e, "from") || !has_number(e, "to") || why == nullptr ||
        !why->is_string()) {
      std::fprintf(stderr, "%s: malformed wait_for edge\n", path.c_str());
      return false;
    }
  }
  return true;
}

// Validates one Chrome trace-event document: object form, `traceEvents`
// array, every event an object with name/ph/pid/tid/ts of the right
// types, complete ("X") events carrying a nonnegative dur.
bool check_trace(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object()) {
    std::fprintf(stderr, "%s: does not parse as a JSON object\n",
                 path.c_str());
    return false;
  }
  const smt::JsonValue* events = v->find("traceEvents");
  if (events == nullptr || !events->is_array() || events->array.empty()) {
    std::fprintf(stderr, "%s: missing/empty traceEvents array\n",
                 path.c_str());
    return false;
  }
  for (const smt::JsonValue& e : events->array) {
    const smt::JsonValue* name = e.find("name");
    const smt::JsonValue* ph = e.find("ph");
    if (!e.is_object() || name == nullptr || !name->is_string() ||
        ph == nullptr || !ph->is_string() || ph->string.size() != 1 ||
        !has_number(e, "pid") || !has_number(e, "tid") ||
        !has_number(e, "ts")) {
      std::fprintf(stderr, "%s: malformed trace event\n", path.c_str());
      return false;
    }
    if (ph->string == "X" &&
        (!has_number(e, "dur") || e.find("dur")->number < 0)) {
      std::fprintf(stderr, "%s: complete event without dur\n", path.c_str());
      return false;
    }
  }
  return true;
}

std::optional<smt::JsonValue> load_json_object(const fs::path& path,
                                               bool* io_error) {
  std::ifstream in(path);
  if (!in) {
    smt::log::error("cannot open", {{"path", path.string()}});
    *io_error = true;
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object()) {
    std::fprintf(stderr, "%s: does not parse as a JSON object\n",
                 path.c_str());
    return std::nullopt;
  }
  return v;
}

// Validates one smt-lint-report/1 document (smt_lint --format=json):
// structure plus the totals-vs-recount invariant.
bool check_lint_report(const fs::path& path, bool* io_error) {
  const auto v = load_json_object(path, io_error);
  if (!v.has_value()) return false;
  const smt::JsonValue* schema = v->find("schema");
  if (schema == nullptr || schema->string != "smt-lint-report/1") {
    std::fprintf(stderr, "%s: missing/unknown schema\n", path.c_str());
    return false;
  }
  const smt::JsonValue* experiments = v->find("experiments");
  const smt::JsonValue* totals = v->find("totals");
  if (experiments == nullptr || !experiments->is_array() ||
      totals == nullptr || !totals->is_object()) {
    std::fprintf(stderr, "%s: missing experiments/totals\n", path.c_str());
    return false;
  }
  double errors = 0, warnings = 0, programs = 0;
  for (const smt::JsonValue& exp : experiments->array) {
    const smt::JsonValue* name = exp.find("name");
    const smt::JsonValue* progs = exp.find("programs");
    if (name == nullptr || !name->is_string() || progs == nullptr ||
        !progs->is_array()) {
      std::fprintf(stderr, "%s: malformed experiment entry\n", path.c_str());
      return false;
    }
    for (const smt::JsonValue& prog : progs->array) {
      ++programs;
      const smt::JsonValue* pname = prog.find("name");
      const smt::JsonValue* diags = prog.find("diagnostics");
      if (pname == nullptr || !pname->is_string() || diags == nullptr ||
          !diags->is_array()) {
        std::fprintf(stderr, "%s: malformed program entry\n", path.c_str());
        return false;
      }
      for (const smt::JsonValue& d : diags->array) {
        const smt::JsonValue* check = d.find("check");
        const smt::JsonValue* severity = d.find("severity");
        const smt::JsonValue* message = d.find("message");
        if (check == nullptr || !check->is_string() || severity == nullptr ||
            !severity->is_string() || message == nullptr ||
            !message->is_string() || !has_number(d, "pc") ||
            !has_number(d, "block")) {
          std::fprintf(stderr, "%s: malformed diagnostic entry\n",
                       path.c_str());
          return false;
        }
        if (severity->string == "error") {
          ++errors;
        } else if (severity->string == "warning") {
          ++warnings;
        } else {
          std::fprintf(stderr, "%s: unknown severity \"%s\"\n", path.c_str(),
                       severity->string.c_str());
          return false;
        }
      }
    }
  }
  bool ok = true;
  const struct {
    const char* key;
    double want;
  } recount[] = {{"errors", errors},
                 {"warnings", warnings},
                 {"programs", programs},
                 {"experiments",
                  static_cast<double>(experiments->array.size())}};
  for (const auto& [key, want] : recount) {
    const double got = number_or(*totals, key, -1.0);
    if (got != want) {
      std::fprintf(stderr, "%s: totals.%s is %.0f, recount says %.0f\n",
                   path.c_str(), key, got, want);
      ok = false;
    }
  }
  return ok;
}

// Cross-checks a smt-sweep-metrics/1 snapshot against the sweep index it
// was written beside. The pool counters are redundant with the index by
// construction, which makes them checkable (cancelled = index jobs the
// pool-level cancel skipped before they started; lint_failed = jobs the
// --lint gate withheld from the pool, always with attempts == 0;
// started = total - cancelled - lint_failed):
//
//   jobs_started == jobs_completed == started; jobs_skipped == cancelled
//   jobs_ok == total - failed;  jobs_failed + jobs_timeout ==
//                                  failed - cancelled - lint_failed
//   attempts == sum(index jobs[].attempts) == started + jobs_retried
//   watchdog_fires == jobs_retried + jobs_timeout  (retries only follow
//                                                   watchdog timeouts)
//   attempt_wall_ms histogram: count == attempts, bucket counts sum to it
//   queue_depth gauge drained to the cancelled count from a high
//     watermark of total - lint_failed (lint-failed jobs are never
//     enqueued); workers_busy drained to 0, peak <= requested
//   one workers[] entry per pool worker, busy_us consistent with the
//   per-worker counters and <= wall_us + 1µs rounding slack
//
//   cache.* counters vs the index's "cached"/"outcome" fields:
//     lookups == hits + misses + verify_failed
//     lookups == started when the sweep ran with cache/resume, else 0
//     hits == #jobs with "cached":true
//     verify_failed == #jobs with outcome "cache_verify_failed"
//     stores <= misses; verified <= hits
bool check_sweep_metrics(const fs::path& metrics_path,
                         const fs::path& index_path, bool* io_error) {
  const auto mv = load_json_object(metrics_path, io_error);
  const auto iv = load_json_object(index_path, io_error);
  if (!mv.has_value() || !iv.has_value()) return false;

  const smt::JsonValue* schema = mv->find("schema");
  if (schema == nullptr || schema->string != "smt-sweep-metrics/1") {
    std::fprintf(stderr, "%s: missing/unknown schema\n", metrics_path.c_str());
    return false;
  }
  const smt::JsonValue* ischema = iv->find("schema");
  if (ischema == nullptr || ischema->string != "smt-sweep-index/1") {
    std::fprintf(stderr, "%s: missing/unknown schema\n", index_path.c_str());
    return false;
  }

  // Index-side ground truth.
  const smt::JsonValue* jobs = iv->find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    std::fprintf(stderr, "%s: missing jobs array\n", index_path.c_str());
    return false;
  }
  const double index_total = jobs->array.size();
  double index_failed = 0;
  double index_attempts = 0;
  double index_cancelled = 0;
  double index_lint_failed = 0;
  double index_cached = 0;
  double index_verify_failed = 0;
  for (const smt::JsonValue& job : jobs->array) {
    const smt::JsonValue* outcome = job.find("outcome");
    if (outcome == nullptr || !outcome->is_string() ||
        !has_number(job, "attempts")) {
      std::fprintf(stderr, "%s: job entry missing outcome/attempts\n",
                   index_path.c_str());
      return false;
    }
    if (outcome->string != "ok") ++index_failed;
    if (outcome->string == "cancelled") ++index_cancelled;
    if (outcome->string == "lint_failed") {
      ++index_lint_failed;
      // Lint-gated jobs are withheld from the pool before any attempt.
      if (job.find("attempts")->number != 0) {
        std::fprintf(stderr, "%s: lint_failed job has %g attempts\n",
                     index_path.c_str(), job.find("attempts")->number);
        return false;
      }
    }
    if (outcome->string == "cache_verify_failed") ++index_verify_failed;
    // Pre-cache indexes have no "cached" field; absent means false.
    const smt::JsonValue* cached = job.find("cached");
    if (cached != nullptr && cached->type == smt::JsonValue::Type::kBool &&
        cached->boolean) {
      ++index_cached;
    }
    index_attempts += job.find("attempts")->number;
  }
  const double index_started =
      index_total - index_cancelled - index_lint_failed;

  const smt::JsonValue* sweep = mv->find("sweep");
  const smt::JsonValue* counters = mv->find("counters");
  const smt::JsonValue* gauges = mv->find("gauges");
  const smt::JsonValue* histograms = mv->find("histograms");
  const smt::JsonValue* workers = mv->find("workers");
  if (sweep == nullptr || !sweep->is_object() || counters == nullptr ||
      !counters->is_object() || gauges == nullptr || !gauges->is_object() ||
      histograms == nullptr || !histograms->is_object() ||
      workers == nullptr || !workers->is_array()) {
    std::fprintf(stderr,
                 "%s: missing sweep/counters/gauges/histograms/workers\n",
                 metrics_path.c_str());
    return false;
  }

  bool ok = true;
  const auto expect = [&](const char* what, double got, double want) {
    if (got != want) {
      std::fprintf(stderr, "%s: %s is %.0f, expected %.0f\n",
                   metrics_path.c_str(), what, got, want);
      ok = false;
    }
  };
  const auto counter = [&](const char* name) {
    return number_or(*counters, name, -1.0);
  };

  expect("sweep.total", number_or(*sweep, "total", -1.0), index_total);
  expect("sweep.failed", number_or(*sweep, "failed", -1.0), index_failed);
  expect("pool.jobs_started", counter("pool.jobs_started"), index_started);
  expect("pool.jobs_completed", counter("pool.jobs_completed"),
         index_started);
  expect("pool.jobs_skipped", counter("pool.jobs_skipped"), index_cancelled);
  expect("pool.jobs_ok", counter("pool.jobs_ok"),
         index_total - index_failed);
  expect("pool.jobs_failed + pool.jobs_timeout",
         counter("pool.jobs_failed") + counter("pool.jobs_timeout"),
         index_failed - index_cancelled - index_lint_failed);
  expect("pool.attempts", counter("pool.attempts"), index_attempts);
  expect("pool.attempts - pool.jobs_retried",
         counter("pool.attempts") - counter("pool.jobs_retried"),
         index_started);
  expect("pool.watchdog_fires", counter("pool.watchdog_fires"),
         counter("pool.jobs_retried") + counter("pool.jobs_timeout"));

  // Result-cache counters. A sweep that ran without --cache/--resume must
  // show zero lookups; one that ran with either looks up every job it
  // actually started, exactly once, and every lookup resolves to a hit,
  // a miss, or a failed verification.
  const auto flag = [&](const char* name) {
    const smt::JsonValue* v = sweep->find(name);
    return v != nullptr && v->type == smt::JsonValue::Type::kBool &&
           v->boolean;
  };
  const bool reuse_enabled = flag("cache") || flag("resume");
  expect("cache.lookups", counter("cache.lookups"),
         reuse_enabled ? index_started : 0.0);
  expect("cache.hits + cache.misses + cache.verify_failed",
         counter("cache.hits") + counter("cache.misses") +
             counter("cache.verify_failed"),
         counter("cache.lookups"));
  expect("cache.hits", counter("cache.hits"), index_cached);
  expect("cache.verify_failed", counter("cache.verify_failed"),
         index_verify_failed);
  if (counter("cache.stores") > counter("cache.misses")) {
    std::fprintf(stderr, "%s: cache.stores %.0f exceeds cache.misses %.0f\n",
                 metrics_path.c_str(), counter("cache.stores"),
                 counter("cache.misses"));
    ok = false;
  }
  if (counter("cache.verified") > counter("cache.hits")) {
    std::fprintf(stderr, "%s: cache.verified %.0f exceeds cache.hits %.0f\n",
                 metrics_path.c_str(), counter("cache.verified"),
                 counter("cache.hits"));
    ok = false;
  }

  const smt::JsonValue* hist = histograms->find("pool.attempt_wall_ms");
  if (hist == nullptr || !hist->is_object()) {
    std::fprintf(stderr, "%s: missing pool.attempt_wall_ms histogram\n",
                 metrics_path.c_str());
    ok = false;
  } else {
    expect("attempt_wall_ms.count", number_or(*hist, "count", -1.0),
           index_attempts);
    const smt::JsonValue* buckets = hist->find("buckets");
    if (buckets == nullptr || !buckets->is_array()) {
      std::fprintf(stderr, "%s: histogram missing buckets\n",
                   metrics_path.c_str());
      ok = false;
    } else {
      double bucket_sum = 0;
      for (const smt::JsonValue& b : buckets->array) {
        bucket_sum += number_or(b, "count", 0.0);
      }
      expect("attempt_wall_ms bucket sum", bucket_sum, index_attempts);
    }
  }

  const smt::JsonValue* depth = gauges->find("pool.queue_depth");
  const smt::JsonValue* busy = gauges->find("pool.workers_busy");
  if (depth == nullptr || busy == nullptr) {
    std::fprintf(stderr, "%s: missing queue_depth/workers_busy gauges\n",
                 metrics_path.c_str());
    ok = false;
  } else {
    // Skipped jobs are never dequeued, so a cancelled sweep's depth gauge
    // drains to exactly the number of jobs the cancel left behind.
    expect("queue_depth.value", number_or(*depth, "value", -1.0),
           index_cancelled);
    expect("queue_depth.max", number_or(*depth, "max", -1.0),
           index_total - index_lint_failed);
    expect("workers_busy.value", number_or(*busy, "value", -1.0), 0);
    const double peak = number_or(*busy, "max", -1.0);
    const double requested = number_or(*sweep, "requested_workers", 0.0);
    if (peak < (index_started > 0 ? 1.0 : 0.0) || peak > requested) {
      std::fprintf(stderr,
                   "%s: workers_busy.max %.0f outside [%.0f, %0.f]\n",
                   metrics_path.c_str(), peak,
                   index_started > 0 ? 1.0 : 0.0, requested);
      ok = false;
    }
  }

  expect("workers[] size", workers->array.size(),
         counter("pool.workers"));
  const double wall_us = counter("pool.wall_us");
  for (const smt::JsonValue& w : workers->array) {
    if (!has_number(w, "worker") || !has_number(w, "busy_us") ||
        !has_number(w, "busy_fraction")) {
      std::fprintf(stderr, "%s: malformed workers[] entry\n",
                   metrics_path.c_str());
      ok = false;
      continue;
    }
    const double id = w.find("worker")->number;
    const double busy_us = w.find("busy_us")->number;
    const std::string counter_name =
        "pool.worker" + std::to_string(static_cast<int>(id)) + ".busy_us";
    expect(counter_name.c_str(), number_or(*counters, counter_name, -1.0),
           busy_us);
    // Both figures round independently from ms doubles, so allow one µs
    // of slack rather than demanding busy_us <= wall_us exactly.
    if (busy_us > wall_us + 1.0) {
      std::fprintf(stderr, "%s: worker%d busy_us %.0f exceeds wall_us %.0f\n",
                   metrics_path.c_str(), static_cast<int>(id), busy_us,
                   wall_us);
      ok = false;
    }
  }
  return ok;
}

// Scans `dir` for files ending in `suffix` and runs `fn` on each;
// returns {checked, bad}.
template <typename Fn>
std::pair<int, int> scan(const fs::path& dir, const std::string& suffix,
                         bool exclude_traces, Fn fn) {
  int checked = 0, bad = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    // A single dir may hold both kinds of artifact; *.trace.json are not
    // run reports.
    if (exclude_traces && name.size() >= 11 &&
        name.compare(name.size() - 11, 11, ".trace.json") == 0)
      continue;
    ++checked;
    if (!fn(entry.path())) ++bad;
  }
  return {checked, bad};
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <report-dir> [trace-dir]"
               " [--metrics FILE --index FILE] [--dumps DIR]"
               " [--lint-report FILE]\n"
               "       %s --lint-report FILE\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> dirs;
  std::string metrics_file;
  std::string index_file;
  std::string dumps_dir;
  std::string lint_report_file;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--metrics" || a == "--index" || a == "--dumps" ||
        a == "--lint-report") {
      if (i + 1 >= argc) {
        smt::log::error("option requires an argument", {{"option", a}});
        return usage(argv[0]);
      }
      (a == "--metrics"       ? metrics_file
       : a == "--index"       ? index_file
       : a == "--lint-report" ? lint_report_file
                              : dumps_dir) = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      smt::log::error("unknown option", {{"option", a}});
      return usage(argv[0]);
    } else {
      dirs.push_back(a);
    }
  }
  // --metrics without --index (or vice versa) has nothing to cross-check
  // against: the counters are only validatable relative to an index.
  if (metrics_file.empty() != index_file.empty()) {
    smt::log::error("--metrics and --index must be given together");
    return usage(argv[0]);
  }
  // A lint report stands on its own, so <report-dir> is optional when
  // --lint-report is the only thing to check.
  if (dirs.size() > 2 || (dirs.empty() && lint_report_file.empty()))
    return usage(argv[0]);

  int bad = 0;
  if (!dirs.empty()) {
    const fs::path dir = dirs[0];
    if (!fs::is_directory(dir)) {
      smt::log::error("not a directory", {{"path", dir.string()}});
      return 3;
    }
    auto [checked, dir_bad] = scan(dir, ".json", /*exclude_traces=*/true,
                                   check_report);
    if (checked == 0) {
      std::fprintf(stderr, "%s: no report artifacts found\n", dir.c_str());
      return 1;
    }
    std::printf("%d report(s) checked, %d bad\n", checked, dir_bad);
    bad += dir_bad;
  }
  if (dirs.size() == 2) {
    const fs::path tdir = dirs[1];
    if (!fs::is_directory(tdir)) {
      smt::log::error("not a directory", {{"path", tdir.string()}});
      return 3;
    }
    auto [tchecked, tbad] = scan(tdir, ".trace.json",
                                 /*exclude_traces=*/false, check_trace);
    if (tchecked == 0) {
      std::fprintf(stderr, "%s: no trace artifacts found\n", tdir.c_str());
      return 1;
    }
    std::printf("%d trace(s) checked, %d bad\n", tchecked, tbad);
    bad += tbad;
  }
  if (!metrics_file.empty()) {
    bool io_error = false;
    if (check_sweep_metrics(metrics_file, index_file, &io_error)) {
      std::printf("metrics snapshot consistent with sweep index\n");
    } else {
      if (io_error) return 3;
      ++bad;
    }
  }
  if (!dumps_dir.empty()) {
    const fs::path ddir = dumps_dir;
    if (!fs::is_directory(ddir)) {
      smt::log::error("not a directory", {{"path", ddir.string()}});
      return 3;
    }
    auto [dchecked, dbad] = scan(ddir, ".json", /*exclude_traces=*/false,
                                 check_dump);
    if (dchecked == 0) {
      std::fprintf(stderr, "%s: no core-dump artifacts found\n",
                   ddir.c_str());
      return 1;
    }
    std::printf("%d dump(s) checked, %d bad\n", dchecked, dbad);
    bad += dbad;
  }
  if (!lint_report_file.empty()) {
    bool io_error = false;
    if (check_lint_report(lint_report_file, &io_error)) {
      std::printf("lint report valid\n");
    } else {
      if (io_error) return 3;
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}
