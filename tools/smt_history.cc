// smt_history: content-addressed benchmark-history store and noise-aware
// cross-run regression gate — the repo's durable performance memory.
//
//   $ smt_history ingest --sweep DIR [--history DIR] [--run-id ID]
//                        [--max-runs N]
//   $ smt_history check  --sweep DIR [--history DIR] [--last K]
//                        [--sigma S] [--rel-floor R] [--abs-floor A]
//   $ smt_history list   [--history DIR] [experiment names...]
//
// `ingest` reads a sweep's artifacts (`<dir>/sweep_index.json`, schema
// smt-sweep-index/1, plus every ok job's run report) and appends one run
// per job to `<history>/BENCH_<experiment>.json` (schema
// smt-bench-history/1). Trajectories are content-addressed: runs are
// keyed by (experiment name, config hash, report schema), where the
// config hash is the FNV-1a digest of the report's canonicalized
// `config` section — results from different machine configurations or
// schema versions never mix. Ingest is idempotent per run id; the
// default id is a digest of the index's *deterministic* job fields
// (name, content key, outcome, cycles, verified, report path), so two
// sweeps of the same work at the same model get the same id no matter
// how long they took — re-ingesting a re-run (or a fully cache-hit
// sweep) of an already-stored sweep is a no-op. Indexes whose jobs
// predate content keys fall back to the digest of the raw index bytes.
// Trajectories keep the newest --max-runs (64) runs, and each stored
// run records its job's content key (when present) so a history entry
// can be traced back to its smt_sweep --cache object.
//
// `check` compares the same sweep against the stored trajectories: for
// each ok job and each deterministic metric (cycles + the report's
// `totals` section — wall_ms is stored for trend data but never gated),
// the last K (10) baseline runs feed a RunningStats accumulator, and the
// new value regresses when |new - mean| exceeds
//     max(abs-floor, sigma * stddev, rel-floor * |mean|)
// (defaults 0 / 3.0 / 0.02). The simulator is deterministic, so on an
// unchanged model the stored metrics are bit-identical and any deviation
// is a real model change: either a bug or an intentional change that
// should be re-ingested as the new baseline. Jobs with no trajectory for
// their key are reported as new, not failed.
//
// Exit status: 0 ok; 1 regression(s) (check only); 2 usage error;
// 3 I/O or parse error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/io.h"
#include "common/json.h"
#include "common/log.h"
#include "common/stats.h"

namespace fs = std::filesystem;

namespace {

using smt::JsonValue;

constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

constexpr char kHistorySchema[] = "smt-bench-history/1";

struct Options {
  std::string command;
  std::string sweep_dir;
  std::string history_dir = "bench/history";
  std::string run_id;       // ingest; default = stable index digest
  int max_runs = 64;        // ingest: trajectory length cap
  int last = 10;            // check: baseline window
  double sigma = 3.0;       // check: noise multiplier
  double rel_floor = 0.02;  // check: relative threshold floor
  double abs_floor = 0.0;   // check: absolute threshold floor
  std::vector<std::string> names;  // list: experiment filter
};

int usage() {
  std::fprintf(
      stderr,
      "usage: smt_history ingest --sweep DIR [--history DIR] [--run-id ID]"
      " [--max-runs N]\n"
      "       smt_history check  --sweep DIR [--history DIR] [--last K]"
      " [--sigma S]\n"
      "                          [--rel-floor R] [--abs-floor A]\n"
      "       smt_history list   [--history DIR] [experiment names...]\n");
  return kExitUsage;
}

// ---------------------------------------------------------------------------
// On-disk model
// ---------------------------------------------------------------------------

struct RunEntry {
  std::string run_id;
  std::string key;  // sweep content-address key; "" for pre-cache runs
  double wall_ms = 0.0;
  std::map<std::string, double> metrics;
};

struct Trajectory {
  std::string config_hash;
  std::string report_schema;
  std::vector<RunEntry> runs;  // oldest first
};

struct History {
  std::string experiment;
  std::vector<Trajectory> trajectories;
};

/// One ok job of the sweep being ingested/checked, reduced to its key
/// and metric set.
struct SweepRun {
  std::string experiment;
  std::string config_hash;
  std::string report_schema;
  std::string key;  // index "key" field; "" when the sweep predates it
  double wall_ms = 0.0;
  std::map<std::string, double> metrics;
};

std::optional<JsonValue> load_json(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    smt::log::error("cannot open", {{"path", path.string()}});
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto v = smt::parse_json(ss.str());
  if (!v.has_value()) {
    smt::log::error("does not parse as JSON", {{"path", path.string()}});
    return std::nullopt;
  }
  return v;
}

fs::path history_file(const Options& opt, const std::string& experiment) {
  return fs::path(opt.history_dir) /
         ("BENCH_" + smt::sanitize_artifact_key(experiment) + ".json");
}

/// Loads one experiment's trajectory file; absent file -> empty history;
/// malformed file -> nullopt (corrupt history must not be silently
/// overwritten).
std::optional<History> load_history(const Options& opt,
                                    const std::string& experiment) {
  History h;
  h.experiment = experiment;
  const fs::path path = history_file(opt, experiment);
  std::error_code ec;
  if (!fs::exists(path, ec)) return h;

  const auto v = load_json(path);
  if (!v.has_value() || !v->is_object()) return std::nullopt;
  const JsonValue* schema = v->find("schema");
  const JsonValue* exp = v->find("experiment");
  const JsonValue* trajs = v->find("trajectories");
  if (schema == nullptr || schema->string != kHistorySchema ||
      exp == nullptr || exp->string != experiment || trajs == nullptr ||
      !trajs->is_array()) {
    smt::log::error("malformed history file", {{"path", path.string()},
                                               {"experiment", experiment}});
    return std::nullopt;
  }
  for (const JsonValue& tv : trajs->array) {
    Trajectory t;
    const JsonValue* hash = tv.find("config_hash");
    const JsonValue* rs = tv.find("report_schema");
    const JsonValue* runs = tv.find("runs");
    if (hash == nullptr || !hash->is_string() || rs == nullptr ||
        !rs->is_string() || runs == nullptr || !runs->is_array()) {
      smt::log::error("malformed trajectory", {{"path", path.string()}});
      return std::nullopt;
    }
    t.config_hash = hash->string;
    t.report_schema = rs->string;
    for (const JsonValue& rv : runs->array) {
      RunEntry r;
      const JsonValue* id = rv.find("run_id");
      const JsonValue* metrics = rv.find("metrics");
      if (id == nullptr || !id->is_string() || metrics == nullptr ||
          !metrics->is_object()) {
        smt::log::error("malformed run entry", {{"path", path.string()}});
        return std::nullopt;
      }
      r.run_id = id->string;
      const JsonValue* key = rv.find("key");
      if (key != nullptr && key->is_string()) r.key = key->string;
      const JsonValue* wall = rv.find("wall_ms");
      if (wall != nullptr && wall->is_number()) r.wall_ms = wall->number;
      for (const auto& [k, mv] : metrics->object) {
        if (mv.is_number()) r.metrics[k] = mv.number;
      }
      t.runs.push_back(std::move(r));
    }
    h.trajectories.push_back(std::move(t));
  }
  return h;
}

bool save_history(const Options& opt, const History& h) {
  smt::JsonWriter w;
  w.begin_object();
  w.kv("schema", kHistorySchema);
  w.kv("experiment", h.experiment);
  w.key("trajectories");
  w.begin_array();
  for (const Trajectory& t : h.trajectories) {
    w.begin_object();
    w.kv("config_hash", t.config_hash);
    w.kv("report_schema", t.report_schema);
    w.key("runs");
    w.begin_array();
    for (const RunEntry& r : t.runs) {
      w.begin_object();
      w.kv("run_id", r.run_id);
      w.kv("key", r.key);
      w.kv("wall_ms", r.wall_ms);
      w.key("metrics");
      w.begin_object();
      for (const auto& [k, v] : r.metrics) w.kv(k, v);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return smt::write_text_file(history_file(opt, h.experiment).string(),
                              w.str());
}

Trajectory* find_trajectory(History& h, const std::string& config_hash,
                            const std::string& report_schema) {
  for (Trajectory& t : h.trajectories) {
    if (t.config_hash == config_hash && t.report_schema == report_schema) {
      return &t;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Sweep-artifact ingestion
// ---------------------------------------------------------------------------

/// Digest of the index's deterministic job fields, used as the default
/// run id: byte-identical re-runs of the same work (including fully
/// cached ones) map to the same id, while wall-clock fields (wall_ms,
/// attempts) never perturb it. Empty when any job predates content keys
/// — the caller then falls back to digesting the raw index bytes.
std::string stable_run_id(const JsonValue& jobs) {
  std::string canon = "smt-history-run-id/1\n";
  for (const JsonValue& job : jobs.array) {
    const JsonValue* name = job.find("name");
    const JsonValue* key = job.find("key");
    const JsonValue* outcome = job.find("outcome");
    const JsonValue* cycles = job.find("cycles");
    const JsonValue* verified = job.find("verified");
    const JsonValue* report = job.find("report");
    if (name == nullptr || !name->is_string() || key == nullptr ||
        !key->is_string() || key->string.empty() || outcome == nullptr ||
        !outcome->is_string() || cycles == nullptr || !cycles->is_number() ||
        report == nullptr || !report->is_string()) {
      return "";
    }
    char cyc[32];
    std::snprintf(cyc, sizeof(cyc), "%.0f", cycles->number);
    const bool ver = verified != nullptr &&
                     verified->type == JsonValue::Type::kBool &&
                     verified->boolean;
    canon += name->string + '\t' + key->string + '\t' + outcome->string +
             '\t' + cyc + '\t' + (ver ? '1' : '0') + '\t' + report->string +
             '\n';
  }
  return smt::fnv1a64_hex(canon);
}

/// Reads the sweep index + every ok job's report; nullopt on any
/// malformed artifact. `default_run_id` receives the sweep's stable id
/// (see stable_run_id), or the raw index bytes' digest for pre-key
/// indexes.
std::optional<std::vector<SweepRun>> load_sweep(const std::string& dir,
                                                std::string* default_run_id) {
  const fs::path index_path = fs::path(dir) / "sweep_index.json";
  std::ifstream in(index_path);
  if (!in) {
    smt::log::error("cannot open sweep index",
                    {{"path", index_path.string()}});
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string raw_index = ss.str();
  const auto v = smt::parse_json(raw_index);
  if (!v.has_value() || !v->is_object()) {
    smt::log::error("sweep index does not parse",
                    {{"path", index_path.string()}});
    return std::nullopt;
  }
  const JsonValue* schema = v->find("schema");
  const JsonValue* jobs = v->find("jobs");
  if (schema == nullptr || schema->string != "smt-sweep-index/1" ||
      jobs == nullptr || !jobs->is_array()) {
    smt::log::error("not a smt-sweep-index/1 document",
                    {{"path", index_path.string()}});
    return std::nullopt;
  }
  *default_run_id = stable_run_id(*jobs);
  if (default_run_id->empty()) {
    *default_run_id = smt::fnv1a64_hex(raw_index);
  }

  std::vector<SweepRun> runs;
  for (const JsonValue& job : jobs->array) {
    const JsonValue* name = job.find("name");
    const JsonValue* outcome = job.find("outcome");
    const JsonValue* report = job.find("report");
    if (name == nullptr || outcome == nullptr || report == nullptr) {
      smt::log::error("malformed index job entry",
                      {{"path", index_path.string()}});
      return std::nullopt;
    }
    if (outcome->string != "ok") continue;  // partial numbers never ingest

    const fs::path report_path = fs::path(dir) / report->string;
    const auto rv = load_json(report_path);
    if (!rv.has_value() || !rv->is_object()) return std::nullopt;
    const JsonValue* rschema = rv->find("schema");
    const JsonValue* config = rv->find("config");
    const JsonValue* cycles = rv->find("cycles");
    if (rschema == nullptr || !rschema->is_string() || config == nullptr ||
        cycles == nullptr || !cycles->is_number()) {
      smt::log::error("malformed run report",
                      {{"path", report_path.string()}});
      return std::nullopt;
    }

    SweepRun r;
    r.experiment = name->string;
    r.report_schema = rschema->string;
    r.config_hash = smt::fnv1a64_hex(smt::to_canonical_string(*config));
    const JsonValue* jkey = job.find("key");
    if (jkey != nullptr && jkey->is_string()) r.key = jkey->string;
    const JsonValue* wall = job.find("wall_ms");
    if (wall != nullptr && wall->is_number()) r.wall_ms = wall->number;
    r.metrics["cycles"] = cycles->number;
    const JsonValue* totals = rv->find("totals");
    if (totals != nullptr && totals->is_object()) {
      for (const auto& [k, tv] : totals->object) {
        if (tv.is_number()) r.metrics["totals." + k] = tv.number;
      }
    }
    runs.push_back(std::move(r));
  }
  return runs;
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

int cmd_ingest(const Options& opt) {
  std::string default_run_id;
  const auto runs = load_sweep(opt.sweep_dir, &default_run_id);
  if (!runs.has_value()) return kExitIo;
  const std::string run_id =
      opt.run_id.empty() ? default_run_id : opt.run_id;

  int ingested = 0;
  int skipped = 0;
  for (const SweepRun& r : *runs) {
    auto h = load_history(opt, r.experiment);
    if (!h.has_value()) return kExitIo;
    Trajectory* t = find_trajectory(*h, r.config_hash, r.report_schema);
    if (t == nullptr) {
      h->trajectories.push_back({r.config_hash, r.report_schema, {}});
      t = &h->trajectories.back();
    }
    bool seen = false;
    for (const RunEntry& e : t->runs) seen = seen || e.run_id == run_id;
    if (seen) {
      ++skipped;
      smt::log::debug("run already ingested", {{"experiment", r.experiment},
                                               {"run_id", run_id}});
      continue;
    }
    RunEntry e;
    e.run_id = run_id;
    e.key = r.key;
    e.wall_ms = r.wall_ms;
    e.metrics = r.metrics;
    t->runs.push_back(std::move(e));
    if (t->runs.size() > static_cast<size_t>(opt.max_runs)) {
      t->runs.erase(t->runs.begin(),
                    t->runs.end() - static_cast<size_t>(opt.max_runs));
    }
    if (!save_history(opt, *h)) return kExitIo;
    ++ingested;
  }
  std::printf("ingested %d run(s), %d already present (run_id %s) into %s\n",
              ingested, skipped, run_id.c_str(), opt.history_dir.c_str());
  return 0;
}

int cmd_check(const Options& opt) {
  std::string default_run_id;
  const auto runs = load_sweep(opt.sweep_dir, &default_run_id);
  if (!runs.has_value()) return kExitIo;

  int regressions = 0;
  int compared = 0;
  int fresh = 0;
  for (const SweepRun& r : *runs) {
    const auto h = load_history(opt, r.experiment);
    if (!h.has_value()) return kExitIo;
    History mutable_h = *h;
    const Trajectory* t =
        find_trajectory(mutable_h, r.config_hash, r.report_schema);
    if (t == nullptr || t->runs.empty()) {
      ++fresh;
      smt::log::info("no baseline trajectory (new experiment/config)",
                     {{"experiment", r.experiment},
                      {"config_hash", r.config_hash},
                      {"report_schema", r.report_schema}});
      continue;
    }
    ++compared;
    const size_t k = std::min(t->runs.size(), static_cast<size_t>(opt.last));
    for (const auto& [metric, value] : r.metrics) {
      smt::RunningStats stats;
      for (size_t i = t->runs.size() - k; i < t->runs.size(); ++i) {
        const auto it = t->runs[i].metrics.find(metric);
        if (it != t->runs[i].metrics.end()) stats.add(it->second);
      }
      if (stats.count() == 0) continue;  // metric new in this schema
      const double mean = stats.mean();
      const double threshold =
          std::max({opt.abs_floor, opt.sigma * stats.stddev(),
                    opt.rel_floor * std::fabs(mean)});
      if (std::fabs(value - mean) > threshold) {
        std::printf(
            "REGRESSION %-24s %-22s baseline=%.6g (n=%llu sd=%.3g) "
            "new=%.6g (%+.2f%%)\n",
            r.experiment.c_str(), metric.c_str(), mean,
            static_cast<unsigned long long>(stats.count()), stats.stddev(),
            value, mean != 0.0 ? 100.0 * (value - mean) / mean : 0.0);
        ++regressions;
      }
    }
  }
  if (regressions > 0) {
    std::printf("%d regression(s) across %d compared job(s)\n", regressions,
                compared);
    return kExitRegression;
  }
  std::printf("OK: %d job(s) within thresholds, %d without baseline "
              "(sigma=%.2g rel=%.2g abs=%.2g last=%d)\n",
              compared, fresh, opt.sigma, opt.rel_floor, opt.abs_floor,
              opt.last);
  return 0;
}

int cmd_list(const Options& opt) {
  std::error_code ec;
  if (!fs::is_directory(opt.history_dir, ec)) {
    smt::log::error("history directory does not exist",
                    {{"path", opt.history_dir}});
    return kExitIo;
  }
  int printed = 0;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(opt.history_dir)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("BENCH_", 0) == 0) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    const auto v = load_json(path);
    if (!v.has_value() || !v->is_object()) return kExitIo;
    const JsonValue* exp = v->find("experiment");
    const JsonValue* trajs = v->find("trajectories");
    if (exp == nullptr || trajs == nullptr || !trajs->is_array()) continue;
    if (!opt.names.empty() &&
        std::find(opt.names.begin(), opt.names.end(), exp->string) ==
            opt.names.end()) {
      continue;
    }
    for (const JsonValue& tv : trajs->array) {
      const JsonValue* hash = tv.find("config_hash");
      const JsonValue* rs = tv.find("report_schema");
      const JsonValue* runs = tv.find("runs");
      if (hash == nullptr || runs == nullptr || !runs->is_array()) continue;
      double last_cycles = 0.0;
      if (!runs->array.empty()) {
        const JsonValue* m = runs->array.back().find("metrics");
        if (m != nullptr) {
          const JsonValue* c = m->find("cycles");
          if (c != nullptr) last_cycles = c->number;
        }
      }
      std::printf("%-28s %s %-16s %3zu run(s)  last cycles=%.0f\n",
                  exp->string.c_str(), hash->string.c_str(),
                  rs != nullptr ? rs->string.c_str() : "?",
                  runs->array.size(), last_cycles);
      ++printed;
    }
  }
  if (printed == 0) std::printf("no trajectories in %s\n",
                                opt.history_dir.c_str());
  return 0;
}

bool parse_args(int argc, char** argv, Options* opt) {
  if (argc < 2) return false;
  opt->command = argv[1];
  if (opt->command != "ingest" && opt->command != "check" &&
      opt->command != "list") {
    smt::log::error("unknown command", {{"command", opt->command}});
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        smt::log::error("option requires an argument", {{"option", flag}});
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (a == "--sweep") {
      if ((v = next("--sweep")) == nullptr) return false;
      opt->sweep_dir = v;
    } else if (a == "--history") {
      if ((v = next("--history")) == nullptr) return false;
      opt->history_dir = v;
    } else if (a == "--run-id") {
      if ((v = next("--run-id")) == nullptr) return false;
      opt->run_id = v;
    } else if (a == "--max-runs") {
      if ((v = next("--max-runs")) == nullptr) return false;
      opt->max_runs = std::atoi(v);
    } else if (a == "--last") {
      if ((v = next("--last")) == nullptr) return false;
      opt->last = std::atoi(v);
    } else if (a == "--sigma") {
      if ((v = next("--sigma")) == nullptr) return false;
      opt->sigma = std::atof(v);
    } else if (a == "--rel-floor") {
      if ((v = next("--rel-floor")) == nullptr) return false;
      opt->rel_floor = std::atof(v);
    } else if (a == "--abs-floor") {
      if ((v = next("--abs-floor")) == nullptr) return false;
      opt->abs_floor = std::atof(v);
    } else if (!a.empty() && a[0] == '-') {
      smt::log::error("unknown option", {{"option", a}});
      return false;
    } else if (opt->command == "list") {
      opt->names.push_back(a);
    } else {
      smt::log::error("unexpected argument", {{"argument", a}});
      return false;
    }
  }
  if (opt->command != "list" && opt->sweep_dir.empty()) {
    smt::log::error("--sweep is required", {{"command", opt->command}});
    return false;
  }
  if (opt->max_runs < 1 || opt->last < 1) {
    smt::log::error("--max-runs/--last must be positive");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return usage();
  if (opt.command == "ingest") return cmd_ingest(opt);
  if (opt.command == "check") return cmd_check(opt);
  return cmd_list(opt);
}
