// smt_sweep: host-parallel experiment orchestrator over the paper's
// figure/table workload suite.
//
//   $ smt_sweep [options] [experiment names...]
//
//   --jobs N          worker threads (default: host hardware concurrency)
//   --out DIR         output directory (default "sweep-out")
//   --manifest FILE   newline-separated experiment names ('#' comments);
//                     default: every default-manifest registry entry
//   --cycle-budget N  per-job simulated-cycle budget override
//   --timeout-ms N    per-attempt wall-clock watchdog (0 = off, default);
//                     a watchdog-killed job is retried once
//   --metrics FILE    write a smt-sweep-metrics/1 snapshot of the pool's
//                     counters/gauges/histograms (watchdog fires, queue
//                     depth, attempt wall times, per-worker busy time)
//   --trace FILE      write a Chrome trace-event (Perfetto-loadable)
//                     timeline of the sweep: one track per worker, one
//                     span per job attempt colored by its outcome
//   --pipeview        record per-uop pipeline lifetimes for every job; a
//                     Kanata file (Konata-loadable) per job lands in
//                     <out>/pipeview/ (reports stay byte-identical)
//   --quiet           errors only: no progress line, log level error
//   --list            print the experiment registry and exit
//
// Every job runs a fresh deterministic Machine simulation through the
// non-aborting core::try_run_workload path on the host::JobPool, so one
// deadlocked or over-budget job cannot abort the process or lose the
// other jobs' measurements. Per-job RunReport JSON artifacts land in
// <out>/reports/ (also for failed jobs — a partial report is still
// data), and a merged, schema-versioned <out>/sweep_index.json records
// every job's structured outcome, timing and report path, in manifest
// order regardless of scheduling. Every job runs with the post-mortem
// flight recorder attached (a pure observer — reports are unaffected);
// when a job dies in deadlock / cycle-budget exhaustion / a detected
// race, its smt-core-dump/1 document lands in <out>/dumps/ and the index
// entry's "dump" field points at it (empty otherwise) — feed it to
// tools/smt_explain for a diagnosis. Because each job's artifact depends
// only on its definition, a parallel sweep's reports are byte-identical
// to a serial (--jobs 1) run's — and stay that way with --metrics and
// --trace enabled, since those artifacts are wall-clock data in separate
// files. While running, a progress line (completed/total, failures, ETA)
// is maintained on stderr when it is a terminal.
//
// Exit status: 0 when every job is ok; 1 with the failed jobs logged
// otherwise (the index and surviving reports are complete either way);
// 2 on usage/manifest errors; 3 when an artifact cannot be written.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/io.h"
#include "common/json.h"
#include "common/log.h"
#include "core/run_report.h"
#include "core/runner.h"
#include "host/experiments.h"
#include "host/job_pool.h"
#include "host/metrics.h"
#include "host/sweep_trace.h"
#include "trace/pipeview.h"
#include "trace/telemetry.h"

namespace {

using smt::host::AttemptEvent;
using smt::host::ExperimentDef;

constexpr int kExitJobFailures = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

struct SweepOptions {
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  std::string out_dir = "sweep-out";
  std::string manifest_path;
  std::string metrics_path;
  std::string trace_path;
  smt::Cycle cycle_budget = 0;  // 0: use each definition's own budget
  long timeout_ms = 0;
  bool pipeview = false;
  bool quiet = false;
  bool list = false;
  std::vector<std::string> names;  // explicit positional selections
};

/// Per-job record for the sweep index, written only by the job's own
/// worker (slots are preallocated, one per manifest entry).
struct JobRecord {
  std::string name;
  std::string outcome = "ok";  // core::RunStatus name, or "timeout"
  std::string message;
  smt::Cycle cycles = 0;
  bool verified = false;
  std::string report;  // path relative to the output directory
  std::string dump;    // core-dump path relative to the output directory
                       // ("" when the job did not die with one)
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--out DIR] [--manifest FILE]\n"
               "       [--cycle-budget N] [--timeout-ms N]\n"
               "       [--metrics FILE] [--trace FILE] [--pipeview]\n"
               "       [--quiet] [--list] [experiment names...]\n",
               argv0);
  return kExitUsage;
}

bool parse_args(int argc, char** argv, SweepOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        smt::log::error("option requires an argument", {{"option", flag}});
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--jobs") {
      const char* v = next("--jobs");
      if (v == nullptr) return false;
      opt->jobs = std::atoi(v);
    } else if (a == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opt->out_dir = v;
    } else if (a == "--manifest") {
      const char* v = next("--manifest");
      if (v == nullptr) return false;
      opt->manifest_path = v;
    } else if (a == "--metrics") {
      const char* v = next("--metrics");
      if (v == nullptr) return false;
      opt->metrics_path = v;
    } else if (a == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) return false;
      opt->trace_path = v;
    } else if (a == "--cycle-budget") {
      const char* v = next("--cycle-budget");
      if (v == nullptr) return false;
      opt->cycle_budget = std::strtoull(v, nullptr, 10);
    } else if (a == "--timeout-ms") {
      const char* v = next("--timeout-ms");
      if (v == nullptr) return false;
      opt->timeout_ms = std::atol(v);
    } else if (a == "--pipeview") {
      opt->pipeview = true;
    } else if (a == "--quiet") {
      opt->quiet = true;
    } else if (a == "--list") {
      opt->list = true;
    } else if (!a.empty() && a[0] == '-') {
      smt::log::error("unknown option", {{"option", a}});
      return false;
    } else {
      opt->names.push_back(a);
    }
  }
  if (opt->jobs < 1) opt->jobs = 1;
  return true;
}

/// Reads a manifest file: one experiment name per line, blank lines and
/// '#' comments skipped.
bool read_manifest(const std::string& path, std::vector<std::string>* names) {
  std::ifstream in(path);
  if (!in) {
    smt::log::error("cannot open manifest", {{"path", path}});
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t\r");
    names->push_back(line.substr(b, e - b + 1));
  }
  return true;
}

std::string index_json(const SweepOptions& opt,
                       const std::vector<JobRecord>& records,
                       const std::vector<smt::host::JobResult>& results,
                       int failed) {
  smt::JsonWriter w;
  w.begin_object();
  w.kv("schema", "smt-sweep-index/1");
  w.kv("workers", opt.jobs);
  w.kv("job_timeout_ms", static_cast<int64_t>(opt.timeout_ms));
  w.kv("total", static_cast<int64_t>(records.size()));
  w.kv("failed", failed);
  w.key("jobs");
  w.begin_array();
  for (size_t i = 0; i < records.size(); ++i) {
    const JobRecord& r = records[i];
    w.begin_object();
    w.kv("name", r.name);
    w.kv("outcome", r.outcome);
    w.kv("message", r.message);
    w.kv("attempts", results[i].attempts);
    w.kv("wall_ms", results[i].wall_ms);
    w.kv("cycles", static_cast<uint64_t>(r.cycles));
    w.kv("verified", r.verified);
    w.kv("report", r.report);
    w.kv("dump", r.dump);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string metrics_json(const smt::host::MetricsRegistry& reg,
                         const SweepOptions& opt, size_t total, int failed) {
  const smt::host::MetricsRegistry::Snapshot s = reg.snapshot();
  smt::JsonWriter w;
  w.begin_object();
  w.kv("schema", "smt-sweep-metrics/1");
  w.key("sweep");
  w.begin_object();
  w.kv("requested_workers", opt.jobs);
  w.kv("total", static_cast<int64_t>(total));
  w.kv("failed", failed);
  w.end_object();
  smt::host::append_metrics_json(w, s);
  // Per-worker busy fractions, derived from the pool counters so human
  // readers (and check_reports) need no arithmetic of their own.
  const auto counter = [&s](const std::string& name) -> uint64_t {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
  };
  const uint64_t wall_us = counter("pool.wall_us");
  const uint64_t workers = counter("pool.workers");
  w.key("workers");
  w.begin_array();
  for (uint64_t i = 0; i < workers; ++i) {
    const uint64_t busy =
        counter("pool.worker" + std::to_string(i) + ".busy_us");
    w.begin_object();
    w.kv("worker", i);
    w.kv("busy_us", busy);
    w.kv("busy_fraction", wall_us == 0 ? 0.0
                                       : static_cast<double>(busy) /
                                             static_cast<double>(wall_us));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Terminal progress line: "[done/total] ok=N failed=N eta=…s", redrawn
/// in place on stderr from the pool's on_attempt callbacks. Inactive
/// (zero output) when stderr is not a TTY or --quiet is set; either way
/// every completion is also logged at debug level for non-interactive
/// observability.
class Progress {
 public:
  Progress(size_t total, bool interactive)
      : total_(total),
        interactive_(interactive),
        t0_(std::chrono::steady_clock::now()) {}

  void on_attempt(const AttemptEvent& e, const std::string& job_name) {
    const std::lock_guard<std::mutex> lock(mu_);
    smt::log::debug("attempt finished",
                    {{"job", job_name},
                     {"worker", e.worker},
                     {"attempt", e.attempt},
                     {"status", smt::host::name(e.status)},
                     {"wall_ms", e.end_ms - e.begin_ms},
                     {"will_retry", e.will_retry}});
    if (e.will_retry) return;  // job not finished yet
    ++done_;
    if (e.status != smt::host::JobStatus::kOk) ++failed_;
    redraw();
  }

  /// Clears the line so the final summary starts on a clean row.
  void finish() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (interactive_ && drew_) std::fputs("\r\033[K", stderr);
  }

 private:
  void redraw() {
    if (!interactive_) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    const double eta =
        done_ == 0 ? 0.0
                   : elapsed / static_cast<double>(done_) *
                         static_cast<double>(total_ - done_);
    std::fprintf(stderr, "\r\033[K[%zu/%zu] ok=%zu failed=%zu eta=%.1fs",
                 done_, total_, done_ - failed_, failed_, eta);
    std::fflush(stderr);
    drew_ = true;
  }

  const size_t total_;
  const bool interactive_;
  const std::chrono::steady_clock::time_point t0_;
  std::mutex mu_;
  size_t done_ = 0;
  size_t failed_ = 0;
  bool drew_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opt;
  if (!parse_args(argc, argv, &opt)) return usage(argv[0]);
  if (opt.quiet) smt::log::set_level(smt::log::Level::kError);

  if (opt.list) {
    for (const ExperimentDef& d : smt::host::experiments()) {
      std::printf("%-28s %s\n", d.name.c_str(),
                  d.in_default_manifest ? "" : "(selftest)");
    }
    return 0;
  }

  // Assemble the manifest: explicit names > manifest file > default suite.
  std::vector<std::string> manifest = opt.names;
  if (!opt.manifest_path.empty() &&
      !read_manifest(opt.manifest_path, &manifest)) {
    return kExitUsage;
  }
  if (manifest.empty()) manifest = smt::host::default_manifest();

  // Resolve every name up front so a typo fails loudly before any work.
  std::vector<const ExperimentDef*> defs;
  bool unknown = false;
  for (const std::string& name : manifest) {
    const ExperimentDef* d = smt::host::find_experiment(name);
    if (d == nullptr) {
      smt::log::error("unknown experiment", {{"name", name}});
      unknown = true;
    }
    defs.push_back(d);
  }
  if (unknown) return kExitUsage;

  // --pipeview flips the process-global telemetry config before any job's
  // Machine is constructed; the config is read-only for the rest of the
  // sweep, so concurrent job workers see a consistent value.
  if (opt.pipeview) {
    smt::trace::TelemetryConfig cfg;
    cfg.pipeview = true;
    smt::trace::set_global_telemetry(cfg);
  }

  std::vector<JobRecord> records(manifest.size());
  std::vector<smt::host::Job> jobs(manifest.size());
  for (size_t i = 0; i < manifest.size(); ++i) {
    const ExperimentDef& def = *defs[i];
    JobRecord& rec = records[i];
    rec.name = def.name;
    const std::string key = smt::sanitize_artifact_key(def.name);
    rec.report = "reports/" + key + ".json";
    const smt::Cycle budget =
        opt.cycle_budget != 0 ? opt.cycle_budget : def.cycle_budget;
    const std::string report_path = opt.out_dir + "/" + rec.report;
    const std::string dump_rel = "dumps/" + key + ".dump.json";
    const std::string dump_path = opt.out_dir + "/" + dump_rel;
    const std::string kanata_path =
        opt.out_dir + "/pipeview/" + key + ".kanata";

    jobs[i].name = def.name;
    jobs[i].fn = [&def, &rec, budget, report_path, dump_rel, dump_path,
                  kanata_path](const smt::host::CancelToken& token,
                               int /*attempt*/, std::string* message) {
      const std::unique_ptr<smt::core::Workload> w = def.make();
      smt::core::RunOptions ro;
      ro.race_detect = def.race_detect;
      ro.flight_recorder = true;
      smt::core::RunOutcome o = smt::core::try_run_workload(
          smt::core::MachineConfig{}, *w, budget,
          [&token] { return token.expired(); }, ro);

      // Even a failed run leaves a valid partial report — write it so the
      // surviving measurements of a broken sweep are never lost. A
      // watchdog retry simply rewrites the file.
      if (!smt::core::RunReport::from(o.stats).write_json_file(report_path)) {
        *message = "could not write report " + report_path;
        rec.outcome = "report_write_failed";
        return smt::host::JobStatus::kFailed;
      }
      // Post-mortem core dump for jobs that died in a diagnosable way.
      // A cancelled (watchdog) attempt never carries one, so a retry
      // cannot leave a stale dump behind; still clear the record so the
      // index only ever references a dump the final attempt produced.
      rec.dump.clear();
      if (!o.core_dump.empty()) {
        if (!smt::write_text_file(dump_path, o.core_dump)) {
          std::fprintf(stderr, "warning: could not write dump %s\n",
                       dump_path.c_str());
        } else {
          rec.dump = dump_rel;
        }
      }
      if (o.stats.pipeview != nullptr &&
          !smt::trace::write_kanata_file(*o.stats.pipeview, kanata_path)) {
        std::fprintf(stderr, "warning: could not write pipeview %s\n",
                     kanata_path.c_str());
      }
      rec.cycles = o.stats.cycles;
      rec.verified = o.stats.verified;
      rec.message = o.message;

      if (o.status == smt::core::RunStatus::kCancelled) {
        rec.outcome = "timeout";
        rec.message = "wall-clock watchdog expired";
        *message = rec.message;
        return smt::host::JobStatus::kTimeout;
      }
      rec.outcome = smt::core::name(o.status);
      if (!o.ok()) {
        *message = o.message;
        return smt::host::JobStatus::kFailed;
      }
      return smt::host::JobStatus::kOk;
    };
  }

  smt::log::info("sweep starting", {{"jobs", manifest.size()},
                                    {"workers", opt.jobs},
                                    {"out", opt.out_dir}});

  smt::host::MetricsRegistry metrics;
  std::mutex trace_mu;
  std::vector<AttemptEvent> trace_events;
  Progress progress(manifest.size(),
                    !opt.quiet && isatty(fileno(stderr)) != 0);

  smt::host::JobPoolConfig pool;
  pool.workers = opt.jobs;
  pool.job_timeout = std::chrono::milliseconds(opt.timeout_ms);
  pool.metrics = &metrics;
  const bool want_trace = !opt.trace_path.empty();
  pool.on_attempt = [&](const AttemptEvent& e) {
    if (want_trace) {
      const std::lock_guard<std::mutex> lock(trace_mu);
      trace_events.push_back(e);
    }
    progress.on_attempt(e, records[e.job].name);
  };

  const std::vector<smt::host::JobResult> results =
      smt::host::run_jobs(pool, jobs);
  progress.finish();

  int failed = 0;
  for (const smt::host::JobResult& r : results) {
    if (r.status != smt::host::JobStatus::kOk) ++failed;
  }

  // Artifact writes: the index is the sweep's primary output; metrics
  // and trace are wall-clock observability artifacts in separate files
  // (reports/index stay byte-identical whatever these options are).
  const std::string index_path = opt.out_dir + "/sweep_index.json";
  if (!smt::write_text_file(index_path,
                            index_json(opt, records, results, failed))) {
    return kExitIo;
  }
  if (!opt.metrics_path.empty() &&
      !smt::write_text_file(
          opt.metrics_path,
          metrics_json(metrics, opt, results.size(), failed))) {
    return kExitIo;
  }
  if (want_trace) {
    std::vector<std::string> job_names(records.size());
    for (size_t i = 0; i < records.size(); ++i) job_names[i] = records[i].name;
    if (!smt::host::write_sweep_trace_file(std::move(trace_events), job_names,
                                           std::min<int>(
                                               opt.jobs,
                                               static_cast<int>(jobs.size())),
                                           opt.trace_path)) {
      return kExitIo;
    }
  }

  std::printf("%zu job(s), %d failed; index: %s\n", results.size(), failed,
              index_path.c_str());
  if (failed > 0) {
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].status != smt::host::JobStatus::kOk) {
        smt::log::error("job failed", {{"job", records[i].name},
                                       {"outcome", records[i].outcome},
                                       {"message", records[i].message},
                                       {"attempts", results[i].attempts}});
      }
    }
    return kExitJobFailures;
  }
  return 0;
}
