// smt_sweep: host-parallel experiment orchestrator over the paper's
// figure/table workload suite.
//
//   $ smt_sweep [options] [experiment names...]
//
//   --jobs N          worker threads (default: host hardware concurrency)
//   --out DIR         output directory (default "sweep-out")
//   --manifest FILE   newline-separated experiment names ('#' comments);
//                     default: every default-manifest registry entry
//   --cycle-budget N  per-job simulated-cycle budget override
//   --timeout-ms N    per-attempt wall-clock watchdog (0 = off, default);
//                     a watchdog-killed job is retried once
//   --list            print the experiment registry and exit
//
// Every job runs a fresh deterministic Machine simulation through the
// non-aborting core::try_run_workload path on the host::JobPool, so one
// deadlocked or over-budget job cannot abort the process or lose the
// other jobs' measurements. Per-job RunReport JSON artifacts land in
// <out>/reports/ (also for failed jobs — a partial report is still
// data), and a merged, schema-versioned <out>/sweep_index.json records
// every job's structured outcome, timing and report path, in manifest
// order regardless of scheduling. Because each job's artifact depends
// only on its definition, a parallel sweep's reports are byte-identical
// to a serial (--jobs 1) run's.
//
// Exit status: 0 when every job is ok; 1 with the failed jobs listed on
// stderr otherwise (the index and surviving reports are complete either
// way); 2 on usage/manifest errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/io.h"
#include "common/json.h"
#include "core/run_report.h"
#include "core/runner.h"
#include "host/experiments.h"
#include "host/job_pool.h"

namespace {

using smt::host::ExperimentDef;

struct SweepOptions {
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  std::string out_dir = "sweep-out";
  std::string manifest_path;
  smt::Cycle cycle_budget = 0;  // 0: use each definition's own budget
  long timeout_ms = 0;
  bool list = false;
  std::vector<std::string> names;  // explicit positional selections
};

/// Per-job record for the sweep index, written only by the job's own
/// worker (slots are preallocated, one per manifest entry).
struct JobRecord {
  std::string name;
  std::string outcome = "ok";  // core::RunStatus name, or "timeout"
  std::string message;
  smt::Cycle cycles = 0;
  bool verified = false;
  std::string report;  // path relative to the output directory
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--out DIR] [--manifest FILE]\n"
               "       [--cycle-budget N] [--timeout-ms N] [--list]\n"
               "       [experiment names...]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, SweepOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--jobs") {
      const char* v = next("--jobs");
      if (v == nullptr) return false;
      opt->jobs = std::atoi(v);
    } else if (a == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opt->out_dir = v;
    } else if (a == "--manifest") {
      const char* v = next("--manifest");
      if (v == nullptr) return false;
      opt->manifest_path = v;
    } else if (a == "--cycle-budget") {
      const char* v = next("--cycle-budget");
      if (v == nullptr) return false;
      opt->cycle_budget = std::strtoull(v, nullptr, 10);
    } else if (a == "--timeout-ms") {
      const char* v = next("--timeout-ms");
      if (v == nullptr) return false;
      opt->timeout_ms = std::atol(v);
    } else if (a == "--list") {
      opt->list = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    } else {
      opt->names.push_back(a);
    }
  }
  if (opt->jobs < 1) opt->jobs = 1;
  return true;
}

/// Reads a manifest file: one experiment name per line, blank lines and
/// '#' comments skipped.
bool read_manifest(const std::string& path, std::vector<std::string>* names) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open manifest %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t\r");
    names->push_back(line.substr(b, e - b + 1));
  }
  return true;
}

std::string index_json(const SweepOptions& opt,
                       const std::vector<JobRecord>& records,
                       const std::vector<smt::host::JobResult>& results,
                       int failed) {
  smt::JsonWriter w;
  w.begin_object();
  w.kv("schema", "smt-sweep-index/1");
  w.kv("workers", opt.jobs);
  w.kv("job_timeout_ms", static_cast<int64_t>(opt.timeout_ms));
  w.kv("total", static_cast<int64_t>(records.size()));
  w.kv("failed", failed);
  w.key("jobs");
  w.begin_array();
  for (size_t i = 0; i < records.size(); ++i) {
    const JobRecord& r = records[i];
    w.begin_object();
    w.kv("name", r.name);
    w.kv("outcome", r.outcome);
    w.kv("message", r.message);
    w.kv("attempts", results[i].attempts);
    w.kv("wall_ms", results[i].wall_ms);
    w.kv("cycles", static_cast<uint64_t>(r.cycles));
    w.kv("verified", r.verified);
    w.kv("report", r.report);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opt;
  if (!parse_args(argc, argv, &opt)) return usage(argv[0]);

  if (opt.list) {
    for (const ExperimentDef& d : smt::host::experiments()) {
      std::printf("%-28s %s\n", d.name.c_str(),
                  d.in_default_manifest ? "" : "(selftest)");
    }
    return 0;
  }

  // Assemble the manifest: explicit names > manifest file > default suite.
  std::vector<std::string> manifest = opt.names;
  if (!opt.manifest_path.empty() &&
      !read_manifest(opt.manifest_path, &manifest)) {
    return 2;
  }
  if (manifest.empty()) manifest = smt::host::default_manifest();

  // Resolve every name up front so a typo fails loudly before any work.
  std::vector<const ExperimentDef*> defs;
  bool unknown = false;
  for (const std::string& name : manifest) {
    const ExperimentDef* d = smt::host::find_experiment(name);
    if (d == nullptr) {
      std::fprintf(stderr, "unknown experiment: %s\n", name.c_str());
      unknown = true;
    }
    defs.push_back(d);
  }
  if (unknown) return 2;

  std::vector<JobRecord> records(manifest.size());
  std::vector<smt::host::Job> jobs(manifest.size());
  for (size_t i = 0; i < manifest.size(); ++i) {
    const ExperimentDef& def = *defs[i];
    JobRecord& rec = records[i];
    rec.name = def.name;
    rec.report = "reports/" + smt::sanitize_artifact_key(def.name) + ".json";
    const smt::Cycle budget =
        opt.cycle_budget != 0 ? opt.cycle_budget : def.cycle_budget;
    const std::string report_path = opt.out_dir + "/" + rec.report;

    jobs[i].name = def.name;
    jobs[i].fn = [&def, &rec, budget, report_path](
                     const smt::host::CancelToken& token, int /*attempt*/,
                     std::string* message) {
      const std::unique_ptr<smt::core::Workload> w = def.make();
      smt::core::RunOutcome o = smt::core::try_run_workload(
          smt::core::MachineConfig{}, *w, budget,
          [&token] { return token.expired(); },
          smt::core::RunOptions{def.race_detect});

      // Even a failed run leaves a valid partial report — write it so the
      // surviving measurements of a broken sweep are never lost. A
      // watchdog retry simply rewrites the file.
      if (!smt::core::RunReport::from(o.stats).write_json_file(report_path)) {
        *message = "could not write report " + report_path;
        rec.outcome = "report_write_failed";
        return smt::host::JobStatus::kFailed;
      }
      rec.cycles = o.stats.cycles;
      rec.verified = o.stats.verified;
      rec.message = o.message;

      if (o.status == smt::core::RunStatus::kCancelled) {
        rec.outcome = "timeout";
        rec.message = "wall-clock watchdog expired";
        *message = rec.message;
        return smt::host::JobStatus::kTimeout;
      }
      rec.outcome = smt::core::name(o.status);
      if (!o.ok()) {
        *message = o.message;
        return smt::host::JobStatus::kFailed;
      }
      return smt::host::JobStatus::kOk;
    };
  }

  smt::host::JobPoolConfig pool;
  pool.workers = opt.jobs;
  pool.job_timeout = std::chrono::milliseconds(opt.timeout_ms);
  const std::vector<smt::host::JobResult> results =
      smt::host::run_jobs(pool, jobs);

  int failed = 0;
  for (const smt::host::JobResult& r : results) {
    if (r.status != smt::host::JobStatus::kOk) ++failed;
  }

  const std::string index_path = opt.out_dir + "/sweep_index.json";
  if (!smt::write_text_file(index_path,
                            index_json(opt, records, results, failed))) {
    return 2;
  }

  std::printf("%zu job(s), %d failed; index: %s\n", results.size(), failed,
              index_path.c_str());
  if (failed > 0) {
    std::fprintf(stderr, "failed jobs:\n");
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].status != smt::host::JobStatus::kOk) {
        std::fprintf(stderr, "  %-28s %s (%s)\n", records[i].name.c_str(),
                     records[i].outcome.c_str(), records[i].message.c_str());
      }
    }
    return 1;
  }
  return 0;
}
