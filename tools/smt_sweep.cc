// smt_sweep: host-parallel experiment orchestrator over the paper's
// figure/table workload suite.
//
//   $ smt_sweep [options] [experiment names...]
//
//   --jobs N          worker threads (default: host hardware concurrency)
//   --out DIR         output directory (default "sweep-out")
//   --manifest FILE   newline-separated experiment names ('#' comments);
//                     default: every default-manifest registry entry
//   --cycle-budget N  per-job simulated-cycle budget override
//   --timeout-ms N    per-attempt wall-clock watchdog (0 = off, default);
//                     a watchdog-killed job is retried once
//   --metrics FILE    write a smt-sweep-metrics/1 snapshot of the pool's
//                     counters/gauges/histograms (watchdog fires, queue
//                     depth, attempt wall times, per-worker busy time)
//   --trace FILE      write a Chrome trace-event (Perfetto-loadable)
//                     timeline of the sweep: one track per worker, one
//                     span per job attempt colored by its outcome
//   --pipeview        record per-uop pipeline lifetimes for every job; a
//                     Kanata file (Konata-loadable) per job lands in
//                     <out>/pipeview/ (reports stay byte-identical)
//   --cache DIR       content-addressed result store (host::ResultStore):
//                     jobs whose key (program digests + config hash +
//                     budget/options + report epoch) already has a stored
//                     object skip simulation entirely, materialize their
//                     report/dump from the cache, and are marked
//                     "cached":true in the index — which stays
//                     byte-identical to an uncached run's modulo that
//                     field (and wall_ms, which is wall-clock data).
//                     Misses store their result after simulating.
//                     Incompatible with --pipeview (Kanata artifacts are
//                     not cached, so a hit could not reproduce them).
//   --cache-verify[=N]  determinism audit (requires --cache): re-simulate
//                     every cache hit (or the first N of them) and
//                     byte-compare report and dump against the stored
//                     object. A divergence is reported as the structured
//                     outcome "cache_verify_failed" (job fails, fresh
//                     artifacts win) — it means either nondeterminism or
//                     a model change behind an unchanged key.
//   --resume          reuse completed jobs from <out>'s existing
//                     sweep_index.json: entries whose key still matches
//                     and whose outcome is a deterministic completion
//                     (with artifacts still on disk) are carried over as
//                     "cached":true without re-simulating; cancelled,
//                     timed-out and key-mismatched jobs re-execute.
//                     Manifest order and the merged-index contract are
//                     preserved.
//   --cancel-after N  cancel the pool after N jobs complete (in-flight
//                     jobs finish; unclaimed jobs land in the index as
//                     outcome "cancelled" with attempts=0) — the
//                     deterministic mid-sweep-kill injection the resume
//                     tests use.
//   --lint            static pre-run gate: run the abstract-interpretation
//                     verifier (analysis::lint_program + lint_concurrency)
//                     over every job's emitted programs before the pool
//                     starts. A job with any error-severity diagnostic is
//                     never simulated: it lands in the index as the
//                     structured outcome "lint_failed" with attempts=0 and
//                     no artifacts, counts toward the failed total (exit
//                     1), and its diagnostics go to stderr. Warnings are
//                     reported but do not gate.
//   --quiet           errors only: no progress line, log level error
//   --list            print the experiment registry and exit
//
// Every job runs a fresh deterministic Machine simulation through the
// non-aborting core::try_run_workload path on the host::JobPool, so one
// deadlocked or over-budget job cannot abort the process or lose the
// other jobs' measurements. Per-job RunReport JSON artifacts land in
// <out>/reports/ (also for failed jobs — a partial report is still
// data), and a merged, schema-versioned <out>/sweep_index.json records
// every job's structured outcome, timing and report path, in manifest
// order regardless of scheduling. Every job runs with the post-mortem
// flight recorder attached (a pure observer — reports are unaffected);
// when a job dies in deadlock / cycle-budget exhaustion / a detected
// race, its smt-core-dump/1 document lands in <out>/dumps/ and the index
// entry's "dump" field points at it (empty otherwise) — feed it to
// tools/smt_explain for a diagnosis. Because each job's artifact depends
// only on its definition, a parallel sweep's reports are byte-identical
// to a serial (--jobs 1) run's — and stay that way with --metrics and
// --trace enabled, since those artifacts are wall-clock data in separate
// files. While running, a progress line (completed/total, failures, ETA)
// is maintained on stderr when it is a terminal.
//
// Exit status: 0 when every job is ok; 1 with the failed jobs logged
// otherwise (the index and surviving reports are complete either way);
// 2 on usage/manifest errors; 3 when an artifact cannot be written.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "analysis/lint.h"
#include "common/io.h"
#include "common/json.h"
#include "common/log.h"
#include "core/machine.h"
#include "core/run_report.h"
#include "core/runner.h"
#include "core/workload.h"
#include "host/experiments.h"
#include "host/job_pool.h"
#include "host/metrics.h"
#include "host/result_store.h"
#include "host/sweep_trace.h"
#include "trace/pipeview.h"
#include "trace/telemetry.h"

namespace {

using smt::host::AttemptEvent;
using smt::host::ExperimentDef;

constexpr int kExitJobFailures = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

struct SweepOptions {
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  std::string out_dir = "sweep-out";
  std::string manifest_path;
  std::string metrics_path;
  std::string trace_path;
  smt::Cycle cycle_budget = 0;  // 0: use each definition's own budget
  long timeout_ms = 0;
  std::string cache_dir;        // "" = no result cache
  long cache_verify = -1;       // -1 off; LONG_MAX bare flag; N = sample
  bool resume = false;
  long cancel_after = 0;        // 0 = off
  bool lint = false;
  bool pipeview = false;
  bool quiet = false;
  bool list = false;
  std::vector<std::string> names;  // explicit positional selections
};

/// Per-job record for the sweep index, written only by the job's own
/// worker (slots are preallocated, one per manifest entry).
struct JobRecord {
  std::string name;
  std::string outcome = "ok";  // core::RunStatus name, "timeout",
                               // "cancelled" or "cache_verify_failed"
  std::string message;
  std::string key;     // host::ResultKey hash ("" when never computed)
  bool cached = false;  // artifacts came from the cache / resumed index
  smt::Cycle cycles = 0;
  bool verified = false;
  std::string report;  // path relative to the output directory
  std::string dump;    // core-dump path relative to the output directory
                       // ("" when the job did not die with one)
};

/// One prior-index entry a --resume run may carry over.
struct ResumeEntry {
  std::string key;
  std::string outcome;
  std::string message;
  smt::Cycle cycles = 0;
  bool verified = false;
  std::string report;
  std::string dump;
};

/// Cache/resume observability, shared across worker threads. Registered
/// in the metrics registry up front (all-zero when caching is off) so
/// the metrics schema is stable and check_reports can cross-check:
/// lookups == hits + misses + verify_failed, hits == index "cached"
/// count, stores <= misses, verified <= hits.
struct CacheCounters {
  explicit CacheCounters(smt::host::MetricsRegistry& reg)
      : lookups(reg.counter("cache.lookups")),
        hits(reg.counter("cache.hits")),
        misses(reg.counter("cache.misses")),
        stores(reg.counter("cache.stores")),
        verified(reg.counter("cache.verified")),
        verify_failed(reg.counter("cache.verify_failed")) {}

  smt::host::Counter& lookups;
  smt::host::Counter& hits;
  smt::host::Counter& misses;
  smt::host::Counter& stores;
  smt::host::Counter& verified;
  smt::host::Counter& verify_failed;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--out DIR] [--manifest FILE]\n"
               "       [--cycle-budget N] [--timeout-ms N]\n"
               "       [--metrics FILE] [--trace FILE] [--pipeview]\n"
               "       [--cache DIR] [--cache-verify[=N]] [--resume]\n"
               "       [--cancel-after N] [--lint]\n"
               "       [--quiet] [--list] [experiment names...]\n",
               argv0);
  return kExitUsage;
}

bool parse_args(int argc, char** argv, SweepOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        smt::log::error("option requires an argument", {{"option", flag}});
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--jobs") {
      const char* v = next("--jobs");
      if (v == nullptr) return false;
      opt->jobs = std::atoi(v);
    } else if (a == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opt->out_dir = v;
    } else if (a == "--manifest") {
      const char* v = next("--manifest");
      if (v == nullptr) return false;
      opt->manifest_path = v;
    } else if (a == "--metrics") {
      const char* v = next("--metrics");
      if (v == nullptr) return false;
      opt->metrics_path = v;
    } else if (a == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) return false;
      opt->trace_path = v;
    } else if (a == "--cycle-budget") {
      const char* v = next("--cycle-budget");
      if (v == nullptr) return false;
      opt->cycle_budget = std::strtoull(v, nullptr, 10);
    } else if (a == "--timeout-ms") {
      const char* v = next("--timeout-ms");
      if (v == nullptr) return false;
      opt->timeout_ms = std::atol(v);
    } else if (a == "--cache") {
      const char* v = next("--cache");
      if (v == nullptr) return false;
      opt->cache_dir = v;
    } else if (a == "--cache-verify") {
      opt->cache_verify = LONG_MAX;  // audit every hit
    } else if (a.rfind("--cache-verify=", 0) == 0) {
      opt->cache_verify = std::atol(a.c_str() + std::strlen("--cache-verify="));
      if (opt->cache_verify < 1) {
        smt::log::error("--cache-verify=N requires N >= 1");
        return false;
      }
    } else if (a == "--resume") {
      opt->resume = true;
    } else if (a == "--cancel-after") {
      const char* v = next("--cancel-after");
      if (v == nullptr) return false;
      opt->cancel_after = std::atol(v);
      if (opt->cancel_after < 1) {
        smt::log::error("--cancel-after requires a positive count");
        return false;
      }
    } else if (a == "--lint") {
      opt->lint = true;
    } else if (a == "--pipeview") {
      opt->pipeview = true;
    } else if (a == "--quiet") {
      opt->quiet = true;
    } else if (a == "--list") {
      opt->list = true;
    } else if (!a.empty() && a[0] == '-') {
      smt::log::error("unknown option", {{"option", a}});
      return false;
    } else {
      opt->names.push_back(a);
    }
  }
  if (opt->jobs < 1) opt->jobs = 1;
  if (opt->cache_verify != -1 && opt->cache_dir.empty()) {
    smt::log::error("--cache-verify requires --cache");
    return false;
  }
  if (opt->pipeview && (!opt->cache_dir.empty() || opt->resume)) {
    // A cache/resume hit skips simulation, so a pipeview'd sweep could
    // not reproduce its Kanata artifacts from reused results — refuse up
    // front rather than silently dropping traces.
    smt::log::error("--pipeview is incompatible with --cache/--resume");
    return false;
  }
  return true;
}

/// Loads the prior index for --resume: name -> reusable entry fields.
/// An absent index resumes nothing (every job runs); a malformed one is
/// an error — silently restarting a sweep the user asked to resume would
/// discard work without saying so.
bool load_resume_index(const std::string& out_dir,
                       std::map<std::string, ResumeEntry>* prior,
                       bool* found) {
  *found = false;
  const std::string path = out_dir + "/sweep_index.json";
  std::ifstream in(path);
  if (!in) {
    smt::log::info("no prior index to resume from; running all jobs",
                   {{"path", path}});
    return true;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object()) {
    smt::log::error("prior index does not parse", {{"path", path}});
    return false;
  }
  const smt::JsonValue* schema = v->find("schema");
  const smt::JsonValue* jobs = v->find("jobs");
  if (schema == nullptr || schema->string != "smt-sweep-index/1" ||
      jobs == nullptr || !jobs->is_array()) {
    smt::log::error("prior index is not smt-sweep-index/1", {{"path", path}});
    return false;
  }
  for (const smt::JsonValue& job : jobs->array) {
    const smt::JsonValue* name = job.find("name");
    const smt::JsonValue* key = job.find("key");
    const smt::JsonValue* outcome = job.find("outcome");
    const smt::JsonValue* report = job.find("report");
    if (name == nullptr || !name->is_string() || key == nullptr ||
        !key->is_string() || key->string.empty() || outcome == nullptr ||
        !outcome->is_string() || report == nullptr || !report->is_string()) {
      continue;  // pre-cache-era or never-ran entry: not reusable
    }
    ResumeEntry e;
    e.key = key->string;
    e.outcome = outcome->string;
    e.report = report->string;
    const smt::JsonValue* message = job.find("message");
    if (message != nullptr && message->is_string()) e.message = message->string;
    const smt::JsonValue* cycles = job.find("cycles");
    if (cycles != nullptr && cycles->is_number()) {
      e.cycles = static_cast<smt::Cycle>(cycles->number);
    }
    const smt::JsonValue* verified = job.find("verified");
    if (verified != nullptr &&
        verified->type == smt::JsonValue::Type::kBool) {
      e.verified = verified->boolean;
    }
    const smt::JsonValue* dump = job.find("dump");
    if (dump != nullptr && dump->is_string()) e.dump = dump->string;
    (*prior)[name->string] = std::move(e);
  }
  *found = true;
  return true;
}

/// True when `path` exists and is non-empty — the artifact-presence bar
/// a resumed entry must clear before its simulation is skipped.
bool artifact_intact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in && in.peek() != std::ifstream::traits_type::eof();
}

/// Reads a manifest file: one experiment name per line, blank lines and
/// '#' comments skipped.
bool read_manifest(const std::string& path, std::vector<std::string>* names) {
  std::ifstream in(path);
  if (!in) {
    smt::log::error("cannot open manifest", {{"path", path}});
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t\r");
    names->push_back(line.substr(b, e - b + 1));
  }
  return true;
}

std::string index_json(const SweepOptions& opt,
                       const std::vector<JobRecord>& records,
                       const std::vector<smt::host::JobResult>& results,
                       int failed) {
  smt::JsonWriter w;
  w.begin_object();
  w.kv("schema", "smt-sweep-index/1");
  w.kv("workers", opt.jobs);
  w.kv("job_timeout_ms", static_cast<int64_t>(opt.timeout_ms));
  w.kv("total", static_cast<int64_t>(records.size()));
  w.kv("failed", failed);
  w.key("jobs");
  w.begin_array();
  for (size_t i = 0; i < records.size(); ++i) {
    const JobRecord& r = records[i];
    w.begin_object();
    w.kv("name", r.name);
    w.kv("outcome", r.outcome);
    w.kv("message", r.message);
    w.kv("key", r.key);
    w.kv("cached", r.cached);
    w.kv("attempts", results[i].attempts);
    w.kv("wall_ms", results[i].wall_ms);
    w.kv("cycles", static_cast<uint64_t>(r.cycles));
    w.kv("verified", r.verified);
    w.kv("report", r.report);
    w.kv("dump", r.dump);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string metrics_json(const smt::host::MetricsRegistry& reg,
                         const SweepOptions& opt, bool resume_active,
                         size_t total, int failed) {
  const smt::host::MetricsRegistry::Snapshot s = reg.snapshot();
  smt::JsonWriter w;
  w.begin_object();
  w.kv("schema", "smt-sweep-metrics/1");
  w.key("sweep");
  w.begin_object();
  w.kv("requested_workers", opt.jobs);
  w.kv("total", static_cast<int64_t>(total));
  w.kv("failed", failed);
  w.kv("cache", !opt.cache_dir.empty());
  // Reports whether resume *reuse* was live, not merely requested: a
  // --resume with no prior index looks nothing up, and check_reports
  // holds cache.lookups to exactly started-jobs when this is set.
  w.kv("resume", resume_active);
  w.kv("cache_verify",
       static_cast<int64_t>(opt.cache_verify == -1 ? 0 : opt.cache_verify));
  w.end_object();
  smt::host::append_metrics_json(w, s);
  // Per-worker busy fractions, derived from the pool counters so human
  // readers (and check_reports) need no arithmetic of their own.
  const auto counter = [&s](const std::string& name) -> uint64_t {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
  };
  const uint64_t wall_us = counter("pool.wall_us");
  const uint64_t workers = counter("pool.workers");
  w.key("workers");
  w.begin_array();
  for (uint64_t i = 0; i < workers; ++i) {
    const uint64_t busy =
        counter("pool.worker" + std::to_string(i) + ".busy_us");
    w.begin_object();
    w.kv("worker", i);
    w.kv("busy_us", busy);
    w.kv("busy_fraction", wall_us == 0 ? 0.0
                                       : static_cast<double>(busy) /
                                             static_cast<double>(wall_us));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Terminal progress line: "[done/total] ok=N failed=N eta=…s", redrawn
/// in place on stderr from the pool's on_attempt callbacks. Inactive
/// (zero output) when stderr is not a TTY or --quiet is set; either way
/// every completion is also logged at debug level for non-interactive
/// observability.
class Progress {
 public:
  Progress(size_t total, bool interactive)
      : total_(total),
        interactive_(interactive),
        t0_(std::chrono::steady_clock::now()) {}

  void on_attempt(const AttemptEvent& e, const std::string& job_name) {
    const std::lock_guard<std::mutex> lock(mu_);
    smt::log::debug("attempt finished",
                    {{"job", job_name},
                     {"worker", e.worker},
                     {"attempt", e.attempt},
                     {"status", smt::host::name(e.status)},
                     {"wall_ms", e.end_ms - e.begin_ms},
                     {"will_retry", e.will_retry}});
    if (e.will_retry) return;  // job not finished yet
    ++done_;
    if (e.status != smt::host::JobStatus::kOk) ++failed_;
    redraw();
  }

  /// Clears the line so the final summary starts on a clean row.
  void finish() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (interactive_ && drew_) std::fputs("\r\033[K", stderr);
  }

 private:
  void redraw() {
    if (!interactive_) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    const double eta =
        done_ == 0 ? 0.0
                   : elapsed / static_cast<double>(done_) *
                         static_cast<double>(total_ - done_);
    std::fprintf(stderr, "\r\033[K[%zu/%zu] ok=%zu failed=%zu eta=%.1fs",
                 done_, total_, done_ - failed_, failed_, eta);
    std::fflush(stderr);
    drew_ = true;
  }

  const size_t total_;
  const bool interactive_;
  const std::chrono::steady_clock::time_point t0_;
  std::mutex mu_;
  size_t done_ = 0;
  size_t failed_ = 0;
  bool drew_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opt;
  if (!parse_args(argc, argv, &opt)) return usage(argv[0]);
  if (opt.quiet) smt::log::set_level(smt::log::Level::kError);

  if (opt.list) {
    for (const ExperimentDef& d : smt::host::experiments()) {
      std::printf("%-28s %s\n", d.name.c_str(),
                  d.in_default_manifest ? "" : "(selftest)");
    }
    return 0;
  }

  // Assemble the manifest: explicit names > manifest file > default suite.
  std::vector<std::string> manifest = opt.names;
  if (!opt.manifest_path.empty() &&
      !read_manifest(opt.manifest_path, &manifest)) {
    return kExitUsage;
  }
  if (manifest.empty()) manifest = smt::host::default_manifest();

  // Resolve every name up front so a typo fails loudly before any work.
  std::vector<const ExperimentDef*> defs;
  bool unknown = false;
  for (const std::string& name : manifest) {
    const ExperimentDef* d = smt::host::find_experiment(name);
    if (d == nullptr) {
      smt::log::error("unknown experiment", {{"name", name}});
      unknown = true;
    }
    defs.push_back(d);
  }
  if (unknown) return kExitUsage;

  // --pipeview flips the process-global telemetry config before any job's
  // Machine is constructed; the config is read-only for the rest of the
  // sweep, so concurrent job workers see a consistent value.
  if (opt.pipeview) {
    smt::trace::TelemetryConfig cfg;
    cfg.pipeview = true;
    smt::trace::set_global_telemetry(cfg);
  }

  // Resume map: prior completed jobs a --resume run may carry over.
  std::map<std::string, ResumeEntry> prior;
  bool resume_active = false;
  if (opt.resume &&
      !load_resume_index(opt.out_dir, &prior, &resume_active)) {
    return kExitIo;
  }

  std::optional<smt::host::ResultStore> cache;
  if (!opt.cache_dir.empty()) cache.emplace(opt.cache_dir);

  smt::host::MetricsRegistry metrics;
  CacheCounters cache_counters(metrics);
  // Countdown of hits still to audit under --cache-verify.
  std::atomic<long> verify_budget{opt.cache_verify == -1 ? 0
                                                         : opt.cache_verify};

  // --lint: the static pre-run gate. A job with any error-severity
  // diagnostic is withheld from the pool entirely; its diagnostics go to
  // stderr and its manifest slot becomes a "lint_failed" index entry.
  std::vector<std::string> lint_msg(manifest.size());
  if (opt.lint) {
    for (size_t i = 0; i < defs.size(); ++i) {
      const ExperimentDef& def = *defs[i];
      const std::unique_ptr<smt::core::Workload> w = def.make();
      smt::core::Machine m;
      w->setup(m);
      smt::analysis::LintOptions lo;
      const smt::core::MemInfo mi = w->mem_info();
      for (const auto& r : mi.data) {
        lo.extents.push_back({r.base, r.bytes, r.name});
      }
      for (const auto& r : mi.sync) {
        lo.extents.push_back({r.base, r.bytes, r.name});
      }
      lo.extents_complete = mi.complete;
      const std::vector<smt::isa::Program>& programs = w->programs();
      std::vector<std::vector<smt::analysis::Diagnostic>> diags =
          smt::analysis::lint_concurrency(programs);
      diags.resize(programs.size());
      size_t errors = 0;
      for (size_t pi = 0; pi < programs.size(); ++pi) {
        const std::vector<smt::analysis::Diagnostic> d =
            smt::analysis::lint_program(programs[pi], lo);
        diags[pi].insert(diags[pi].end(), d.begin(), d.end());
        errors += smt::analysis::count_severity(
            diags[pi], smt::analysis::Severity::kError);
        if (!diags[pi].empty()) {
          std::fputs(
              smt::analysis::format_diagnostics(programs[pi], diags[pi])
                  .c_str(),
              stderr);
        }
      }
      if (errors > 0) {
        lint_msg[i] =
            std::to_string(errors) + " lint error(s); job not simulated";
        smt::log::error("lint gate failed", {{"job", def.name},
                                             {"errors", errors}});
      }
    }
  }

  std::vector<JobRecord> records(manifest.size());
  std::vector<smt::host::Job> jobs(manifest.size());
  for (size_t i = 0; i < manifest.size(); ++i) {
    const ExperimentDef& def = *defs[i];
    JobRecord& rec = records[i];
    rec.name = def.name;
    if (!lint_msg[i].empty()) {
      rec.outcome = "lint_failed";
      rec.message = lint_msg[i];
      continue;  // no artifacts, never submitted to the pool
    }
    const std::string key = smt::sanitize_artifact_key(def.name);
    rec.report = "reports/" + key + ".json";
    const smt::Cycle budget =
        opt.cycle_budget != 0 ? opt.cycle_budget : def.cycle_budget;
    const std::string report_path = opt.out_dir + "/" + rec.report;
    const std::string dump_rel = "dumps/" + key + ".dump.json";
    const std::string dump_path = opt.out_dir + "/" + dump_rel;
    const std::string kanata_path =
        opt.out_dir + "/pipeview/" + key + ".kanata";

    jobs[i].name = def.name;
    jobs[i].artifacts = {report_path, dump_path, kanata_path};
    jobs[i].fn = [&, budget, report_path, dump_rel, dump_path, kanata_path](
                     const smt::host::CancelToken& token, int attempt,
                     std::string* message) {
      smt::core::RunOptions ro;
      ro.race_detect = def.race_detect;
      ro.flight_recorder = true;
      // Content key: everything this job's artifacts can depend on. Also
      // computed for cache-less sweeps so the index always carries the
      // job's content address (and stays byte-identical to a cached
      // run's, modulo the "cached" field).
      const smt::host::ResultKey content_key =
          smt::host::result_key(def, smt::core::MachineConfig{}, budget, ro);
      rec.key = content_key.hash();

      // Maps a reused completed outcome back onto a pool status.
      const auto replay_status = [&](const std::string& outcome) {
        if (outcome == "ok") return smt::host::JobStatus::kOk;
        *message = rec.message.empty() ? outcome : rec.message;
        return smt::host::JobStatus::kFailed;
      };
      // One deterministic simulation of this job: the report bytes are
      // fully determined by the content key (the determinism contract
      // the cache relies on and --cache-verify audits).
      const auto simulate = [&]() {
        const std::unique_ptr<smt::core::Workload> w = def.make();
        smt::core::RunOutcome o = smt::core::try_run_workload(
            smt::core::MachineConfig{}, *w, budget,
            [&token] { return token.expired(); }, ro);
        std::string report_json = smt::core::RunReport::from(o.stats).to_json();
        return std::pair<smt::core::RunOutcome, std::string>(
            std::move(o), std::move(report_json));
      };

      // Reuse paths (resume, then cache) — first attempt only: a retry
      // only ever follows a watchdog kill, and a reuse hit cannot time
      // out, so attempt 1 always means "really simulate".
      if (attempt == 0 && (resume_active || cache.has_value())) {
        cache_counters.lookups.inc();
        bool reused = false;
        if (resume_active) {
          const auto it = prior.find(def.name);
          if (it != prior.end() && it->second.key == rec.key &&
              smt::host::cacheable_outcome(it->second.outcome) &&
              it->second.report == rec.report &&
              artifact_intact(opt.out_dir + "/" + it->second.report) &&
              (it->second.dump.empty() ||
               artifact_intact(opt.out_dir + "/" + it->second.dump))) {
            rec.outcome = it->second.outcome;
            rec.message = it->second.message;
            rec.cycles = it->second.cycles;
            rec.verified = it->second.verified;
            rec.dump = it->second.dump;
            rec.cached = true;
            reused = true;
          }
        }
        if (!reused && cache.has_value()) {
          std::optional<smt::host::CachedResult> hit =
              cache->load(content_key);
          if (hit.has_value()) {
            // Determinism audit: re-simulate a sample of hits and demand
            // byte-identical artifacts before trusting the cache.
            if (verify_budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
              auto [o, fresh_report] = simulate();
              if (fresh_report != hit->report_json ||
                  o.core_dump != hit->dump_json) {
                cache_counters.verify_failed.inc();
                smt::write_text_file(report_path, fresh_report);
                rec.dump.clear();
                if (!o.core_dump.empty() &&
                    smt::write_text_file(dump_path, o.core_dump)) {
                  rec.dump = dump_rel;
                }
                rec.cycles = o.stats.cycles;
                rec.verified = o.stats.verified;
                rec.outcome = "cache_verify_failed";
                rec.message =
                    "cached artifacts diverge from re-simulation (key " +
                    rec.key + ")";
                rec.cached = false;
                *message = rec.message;
                return smt::host::JobStatus::kFailed;
              }
              cache_counters.verified.inc();
            }
            if (!smt::write_text_file(report_path, hit->report_json)) {
              *message = "could not write report " + report_path;
              rec.outcome = "report_write_failed";
              return smt::host::JobStatus::kFailed;
            }
            rec.dump.clear();
            if (!hit->dump_json.empty()) {
              if (!smt::write_text_file(dump_path, hit->dump_json)) {
                std::fprintf(stderr, "warning: could not write dump %s\n",
                             dump_path.c_str());
              } else {
                rec.dump = dump_rel;
              }
            }
            rec.outcome = hit->outcome;
            rec.message = hit->message;
            rec.cycles = hit->cycles;
            rec.verified = hit->verified;
            rec.cached = true;
            reused = true;
          }
        }
        if (reused) {
          cache_counters.hits.inc();
          return replay_status(rec.outcome);
        }
        cache_counters.misses.inc();
      }

      // Self-test fault injection: die by "watchdog" on the first
      // attempt, stranding garbage where the artifacts belong — the
      // pool's pre-retry scrub must remove them before the retry writes
      // the real ones (sweep_smoke byte-compares the survivors).
      if (def.timeout_first_attempt && attempt == 0) {
        smt::write_text_file(report_path, "{\"partial\":");
        smt::write_text_file(dump_path, "{\"partial\":");
        rec.outcome = "timeout";
        rec.message = "injected first-attempt timeout";
        *message = rec.message;
        return smt::host::JobStatus::kTimeout;
      }

      auto [o, report_json] = simulate();

      // Even a failed run leaves a valid partial report — write it so the
      // surviving measurements of a broken sweep are never lost. A
      // watchdog retry simply rewrites the file.
      if (!smt::write_text_file(report_path, report_json)) {
        *message = "could not write report " + report_path;
        rec.outcome = "report_write_failed";
        return smt::host::JobStatus::kFailed;
      }
      // Post-mortem core dump for jobs that died in a diagnosable way.
      // A cancelled (watchdog) attempt never carries one — and the pool
      // scrubs all artifact paths before a retry anyway; still clear the
      // record so the index only ever references a dump the final
      // attempt produced.
      rec.dump.clear();
      if (!o.core_dump.empty()) {
        if (!smt::write_text_file(dump_path, o.core_dump)) {
          std::fprintf(stderr, "warning: could not write dump %s\n",
                       dump_path.c_str());
        } else {
          rec.dump = dump_rel;
        }
      }
      if (o.stats.pipeview != nullptr &&
          !smt::trace::write_kanata_file(*o.stats.pipeview, kanata_path)) {
        std::fprintf(stderr, "warning: could not write pipeview %s\n",
                     kanata_path.c_str());
      }
      rec.cycles = o.stats.cycles;
      rec.verified = o.stats.verified;
      rec.message = o.message;
      rec.cached = false;

      if (o.status == smt::core::RunStatus::kCancelled) {
        rec.outcome = "timeout";
        rec.message = "wall-clock watchdog expired";
        *message = rec.message;
        return smt::host::JobStatus::kTimeout;
      }
      rec.outcome = smt::core::name(o.status);
      // Completed deterministic outcomes populate the cache; wall-clock
      // outcomes (timeout above) never do.
      if (cache.has_value() && smt::host::cacheable_outcome(rec.outcome)) {
        smt::host::CachedResult entry;
        entry.outcome = rec.outcome;
        entry.message = rec.message;
        entry.cycles = rec.cycles;
        entry.verified = rec.verified;
        entry.report_json = report_json;
        entry.dump_json = o.core_dump;
        if (cache->store(content_key, entry)) cache_counters.stores.inc();
      }
      if (!o.ok()) {
        *message = o.message;
        return smt::host::JobStatus::kFailed;
      }
      return smt::host::JobStatus::kOk;
    };
  }

  // Jobs that survived the lint gate, in manifest order; submit[k] maps
  // the pool's job index k back to the manifest/records index.
  std::vector<size_t> submit;
  std::vector<smt::host::Job> pool_jobs;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (lint_msg[i].empty()) {
      submit.push_back(i);
      pool_jobs.push_back(std::move(jobs[i]));
    }
  }

  smt::log::info("sweep starting", {{"jobs", pool_jobs.size()},
                                    {"workers", opt.jobs},
                                    {"out", opt.out_dir},
                                    {"cache", opt.cache_dir},
                                    {"resume", resume_active}});

  std::mutex trace_mu;
  std::vector<AttemptEvent> trace_events;
  Progress progress(pool_jobs.size(),
                    !opt.quiet && isatty(fileno(stderr)) != 0);

  smt::host::CancelToken sweep_cancel;
  std::atomic<long> completions{0};

  smt::host::JobPoolConfig pool;
  pool.workers = opt.jobs;
  pool.job_timeout = std::chrono::milliseconds(opt.timeout_ms);
  pool.metrics = &metrics;
  pool.cancel = &sweep_cancel;
  const bool want_trace = !opt.trace_path.empty();
  pool.on_attempt = [&](const AttemptEvent& e) {
    if (want_trace) {
      const std::lock_guard<std::mutex> lock(trace_mu);
      trace_events.push_back(e);
    }
    // --cancel-after: the deterministic mid-sweep-kill injection. Fires
    // between jobs (the pool checks the token before each claim), so the
    // N-th completion is the last job that runs under --jobs 1.
    if (opt.cancel_after > 0 && !e.will_retry &&
        completions.fetch_add(1, std::memory_order_relaxed) + 1 >=
            opt.cancel_after) {
      sweep_cancel.cancel();
    }
    progress.on_attempt(e, records[submit[e.job]].name);
  };

  // Full-size results: pool results scattered back to manifest slots;
  // lint-failed slots keep attempts == 0 and count as failed.
  std::vector<smt::host::JobResult> results(records.size());
  {
    const std::vector<smt::host::JobResult> pool_results =
        smt::host::run_jobs(pool, pool_jobs);
    for (size_t k = 0; k < pool_results.size(); ++k) {
      results[submit[k]] = pool_results[k];
    }
  }
  for (size_t i = 0; i < records.size(); ++i) {
    if (!lint_msg[i].empty()) {
      results[i].status = smt::host::JobStatus::kFailed;
      results[i].message = records[i].message;
    }
  }
  progress.finish();

  // Jobs the pool-level cancel kept from starting: structured outcomes,
  // no artifacts, attempts=0 — and re-executable by a later --resume.
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].status == smt::host::JobStatus::kSkipped) {
      records[i].outcome = "cancelled";
      records[i].message = "sweep cancelled before this job started";
      records[i].report.clear();
      records[i].dump.clear();
    }
  }

  int failed = 0;
  for (const smt::host::JobResult& r : results) {
    if (r.status != smt::host::JobStatus::kOk) ++failed;
  }

  // Artifact writes: the index is the sweep's primary output; metrics
  // and trace are wall-clock observability artifacts in separate files
  // (reports/index stay byte-identical whatever these options are).
  const std::string index_path = opt.out_dir + "/sweep_index.json";
  if (!smt::write_text_file(index_path,
                            index_json(opt, records, results, failed))) {
    return kExitIo;
  }
  if (!opt.metrics_path.empty() &&
      !smt::write_text_file(
          opt.metrics_path,
          metrics_json(metrics, opt, resume_active, results.size(),
                       failed))) {
    return kExitIo;
  }
  if (want_trace) {
    // Trace events carry pool-job indices, so the name table is the
    // submitted (post-lint-gate) job list.
    std::vector<std::string> job_names(submit.size());
    for (size_t k = 0; k < submit.size(); ++k) {
      job_names[k] = records[submit[k]].name;
    }
    if (!smt::host::write_sweep_trace_file(
            std::move(trace_events), job_names,
            std::min<int>(opt.jobs, static_cast<int>(submit.size())),
            opt.trace_path)) {
      return kExitIo;
    }
  }

  std::printf("%zu job(s), %d failed; index: %s\n", results.size(), failed,
              index_path.c_str());
  if (failed > 0) {
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].status != smt::host::JobStatus::kOk) {
        smt::log::error("job failed", {{"job", records[i].name},
                                       {"outcome", records[i].outcome},
                                       {"message", records[i].message},
                                       {"attempts", results[i].attempts}});
      }
    }
    return kExitJobFailures;
  }
  return 0;
}
