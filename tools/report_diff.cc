// Run-report comparator / regression gate:
//
//   $ report_diff <a.json> <b.json> [--rel-tol R] [--abs-tol A]
//
// Compares two RunReport artifacts (any mix of schemas /1, /2, /3, /4):
// cycles, every per-CPU counter, the cycle-accounting breakdown, the
// totals section — when both reports are profiled (/3+), the per-PC
// hotspot attributions (retired uops, total stall cycles, L2 misses; a PC
// absent on one side counts as zero there) — and, when both carry an
// interference section (/4), the per-CPU self/sibling stall attributions
// per resource plus the L2 sibling-eviction counts, gated by the same
// relative/absolute thresholds.
//
// A quantity regresses when |a-b| exceeds BOTH the absolute tolerance
// (default 0 — any change) and the relative tolerance against
// max(|a|,|b|) (default 0.02 = 2%). Every regression is printed; the exit
// code is the gate: 0 = within tolerance, 1 = regression(s) or a file
// that is not a run report, 2 = usage error, 3 = unreadable input. This
// is the seed of a bench-trajectory gate: diff a fresh
// SMT_BENCH_REPORT_DIR artifact against a checked-in baseline (the
// cross-run generalization lives in smt_history).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/log.h"
#include "common/types.h"
#include "perfmon/events.h"

namespace {

using smt::JsonValue;

double number_or(const JsonValue& obj, const std::string& key,
                 double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

struct Gate {
  double rel_tol = 0.02;
  double abs_tol = 0.0;
  int regressions = 0;

  // Flags `label` when a and b differ beyond both tolerances.
  void compare(const std::string& label, double a, double b) {
    const double diff = std::fabs(a - b);
    if (diff <= abs_tol) return;
    const double base = std::max(std::fabs(a), std::fabs(b));
    if (base > 0.0 && diff / base <= rel_tol) return;
    std::printf("REGRESSION %-48s  a=%.6g  b=%.6g  (%+.2f%%)\n",
                label.c_str(), a, b,
                a != 0.0 ? 100.0 * (b - a) / a : 0.0);
    ++regressions;
  }
};

// Loads one report; on failure sets *fail_rc to 3 (unreadable) or 1 (not
// a run report) so main can exit with the right class.
std::optional<JsonValue> load(const char* path, int* fail_rc) {
  std::ifstream in(path);
  if (!in) {
    smt::log::error("cannot open", {{"path", path}});
    *fail_rc = 3;
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object() || v->find("schema") == nullptr) {
    smt::log::error("not a run report", {{"path", path}});
    *fail_rc = 1;
    return std::nullopt;
  }
  return v;
}

// Per-(cpu,pc) hotspot triple used for the /3 comparison.
struct HotspotRow {
  double uops = 0;
  double stall_cycles = 0;
  double l2_misses = 0;
};

std::map<std::string, HotspotRow> hotspot_rows(const JsonValue& report) {
  std::map<std::string, HotspotRow> rows;
  const JsonValue* prof = report.find("profile");
  const JsonValue* hotspots =
      prof != nullptr ? prof->find("hotspots") : nullptr;
  if (hotspots == nullptr || !hotspots->is_array()) return rows;
  for (size_t c = 0; c < hotspots->array.size(); ++c) {
    const JsonValue* pcs = hotspots->array[c].find("pcs");
    if (pcs == nullptr || !pcs->is_array()) continue;
    for (const JsonValue& e : pcs->array) {
      char key[64];
      std::snprintf(key, sizeof key, "cpu%zu.pc%04llu", c,
                    static_cast<unsigned long long>(number_or(e, "pc", 0)));
      HotspotRow& r = rows[key];
      r.uops = number_or(e, "retired_uops", 0.0);
      r.l2_misses = number_or(e, "l2_misses", 0.0);
      const JsonValue* stalls = e.find("stalls");
      if (stalls != nullptr && stalls->is_object()) {
        for (const auto& [name, v] : stalls->object) {
          if (v.is_number()) r.stall_cycles += v.number;
        }
      }
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const char* pa = nullptr;
  const char* pb = nullptr;
  Gate gate;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rel-tol") == 0 && i + 1 < argc) {
      gate.rel_tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--abs-tol") == 0 && i + 1 < argc) {
      gate.abs_tol = std::atof(argv[++i]);
    } else if (pa == nullptr && argv[i][0] != '-') {
      pa = argv[i];
    } else if (pb == nullptr && argv[i][0] != '-') {
      pb = argv[i];
    } else {
      pa = pb = nullptr;
      break;
    }
  }
  if (pa == nullptr || pb == nullptr) {
    std::fprintf(stderr,
                 "usage: %s <a.json> <b.json> [--rel-tol R] [--abs-tol A]\n",
                 argv[0]);
    return 2;
  }
  int fail_rc = 0;
  const auto a = load(pa, &fail_rc);
  const auto b = load(pb, &fail_rc);
  if (!a.has_value() || !b.has_value()) return fail_rc;

  gate.compare("cycles", number_or(*a, "cycles", 0.0),
               number_or(*b, "cycles", 0.0));

  // Per-CPU counters and cycle-accounting breakdown.
  const JsonValue* acpus = a->find("cpus");
  const JsonValue* bcpus = b->find("cpus");
  if (acpus != nullptr && bcpus != nullptr && acpus->is_array() &&
      bcpus->is_array() && acpus->array.size() == bcpus->array.size()) {
    for (size_t i = 0; i < acpus->array.size(); ++i) {
      const JsonValue* ae = acpus->array[i].find("events");
      const JsonValue* be = bcpus->array[i].find("events");
      if (ae == nullptr || be == nullptr) continue;
      for (int e = 0; e < smt::perfmon::kNumEventValues; ++e) {
        const char* name =
            smt::perfmon::name(static_cast<smt::perfmon::Event>(e));
        char label[80];
        std::snprintf(label, sizeof label, "cpu%zu.events.%s", i, name);
        gate.compare(label, number_or(*ae, name, 0.0),
                     number_or(*be, name, 0.0));
      }
      const JsonValue* ab = acpus->array[i].find("breakdown");
      const JsonValue* bb = bcpus->array[i].find("breakdown");
      if (ab == nullptr || bb == nullptr || !ab->is_object()) continue;
      for (const auto& [key, av] : ab->object) {
        if (!av.is_number()) continue;
        char label[80];
        std::snprintf(label, sizeof label, "cpu%zu.breakdown.%s", i,
                      key.c_str());
        gate.compare(label, av.number, number_or(*bb, key, 0.0));
      }
    }
  } else {
    smt::log::warn("cpus sections not comparable", {{"a", pa}, {"b", pb}});
  }

  const JsonValue* at = a->find("totals");
  const JsonValue* bt = b->find("totals");
  if (at != nullptr && bt != nullptr && at->is_object()) {
    for (const auto& [key, av] : at->object) {
      if (av.is_number()) {
        gate.compare("totals." + key, av.number, number_or(*bt, key, 0.0));
      }
    }
  }

  // Hotspot attributions, when both sides carry a profile.
  const bool a3 = a->find("profile") != nullptr;
  const bool b3 = b->find("profile") != nullptr;
  if (a3 && b3) {
    const auto ra = hotspot_rows(*a);
    auto rb = hotspot_rows(*b);
    for (const auto& [key, row] : ra) {
      const HotspotRow other = rb.count(key) > 0 ? rb[key] : HotspotRow{};
      rb.erase(key);
      gate.compare(key + ".retired_uops", row.uops, other.uops);
      gate.compare(key + ".stall_cycles", row.stall_cycles,
                   other.stall_cycles);
      gate.compare(key + ".l2_misses", row.l2_misses, other.l2_misses);
    }
    for (const auto& [key, row] : rb) {  // PCs present only in b
      gate.compare(key + ".retired_uops", 0.0, row.uops);
      gate.compare(key + ".stall_cycles", 0.0, row.stall_cycles);
      gate.compare(key + ".l2_misses", 0.0, row.l2_misses);
    }
  } else if (a3 != b3) {
    std::printf("note: only one report is profiled (/3); hotspots not "
                "compared\n");
  }

  // Interference attributions, when both sides carry them (/4). Every
  // numeric leaf is compared under the same relative-threshold gate:
  // self/sibling cycles per reason, the port-conflict decomposition and
  // the L2 sibling-eviction count.
  const JsonValue* ai = a->find("interference");
  const JsonValue* bi = b->find("interference");
  if (ai != nullptr && bi != nullptr && ai->is_array() && bi->is_array() &&
      ai->array.size() == bi->array.size()) {
    for (size_t i = 0; i < ai->array.size(); ++i) {
      const JsonValue& ac = ai->array[i];
      const JsonValue& bc = bi->array[i];
      for (const char* side : {"self", "sibling"}) {
        const JsonValue* am = ac.find(side);
        const JsonValue* bm = bc.find(side);
        if (am == nullptr || !am->is_object()) continue;
        for (const auto& [reason, av] : am->object) {
          if (!av.is_number()) continue;
          char label[96];
          std::snprintf(label, sizeof label, "cpu%zu.interference.%s.%s", i,
                        side, reason.c_str());
          gate.compare(label, av.number,
                       bm != nullptr ? number_or(*bm, reason, 0.0) : 0.0);
        }
      }
      const JsonValue* apc = ac.find("port_conflict");
      const JsonValue* bpc = bc.find("port_conflict");
      if (apc != nullptr && apc->is_object()) {
        for (const auto& [side, am] : apc->object) {
          if (!am.is_object()) continue;
          const JsonValue* bm =
              bpc != nullptr ? bpc->find(side) : nullptr;
          for (const auto& [port, av] : am.object) {
            if (!av.is_number()) continue;
            char label[96];
            std::snprintf(label, sizeof label,
                          "cpu%zu.interference.port_conflict.%s.%s", i,
                          side.c_str(), port.c_str());
            gate.compare(label, av.number,
                         bm != nullptr ? number_or(*bm, port, 0.0) : 0.0);
          }
        }
      }
      char label[96];
      std::snprintf(label, sizeof label,
                    "cpu%zu.interference.l2_sibling_evictions", i);
      gate.compare(label, number_or(ac, "l2_sibling_evictions", 0.0),
                   number_or(bc, "l2_sibling_evictions", 0.0));
    }
  } else if ((ai != nullptr) != (bi != nullptr)) {
    std::printf("note: only one report carries interference (/4); not "
                "compared\n");
  }

  if (gate.regressions == 0) {
    std::printf("OK: reports match within tolerance (rel %.4f, abs %.4f)\n",
                gate.rel_tol, gate.abs_tol);
    return 0;
  }
  std::printf("%d regression(s)\n", gate.regressions);
  return 1;
}
