// Annotated-disassembly viewer for profiled run reports:
//
//   $ smt_annotate <report.json> [--cpu N] [--top K] [--predict]
//
// Joins the `profile` section of a schema smt-run-report/3 artifact (per-PC
// retired uops, issue-port occupancy, stall cycles by blocking reason,
// L1/L2 misses — see src/profile/pc_profiler.h) with the disassembly the
// report carries, printing for each logical CPU:
//
//   * a Table-1-style port-utilization table: uops issued down each port
//     and the port's utilization against its per-cycle cap — the lens that
//     makes ALU0 serialization (mask-heavy blocked-layout MM) and the
//     single shared FP port visible at a glance;
//   * an annotated listing in program order: estimated cycle share (port
//     occupancy weighted by the per-cycle caps), per-port uop counts,
//     stalls by reason, and miss counts per instruction.
//
// `--top K` restricts the listing to the K busiest PCs (by cycle share),
// still in program order. `--predict` looks the report's workload up in
// the host experiment registry, re-emits its programs, and prints the
// static CPI lower bound (analysis/static_perf.h) next to each CPU's
// measured occupancy — the advisor's prediction against what the
// cycle-accurate core actually did. Exit status: 0 ok; 1 if the file is
// not a schema /3 report (or its profile section is malformed); 2 usage
// error; 3 unreadable input.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static_perf.h"
#include "common/json.h"
#include "common/log.h"
#include "common/table.h"
#include "common/types.h"
#include "core/machine.h"
#include "core/workload.h"
#include "cpu/config.h"
#include "cpu/core.h"
#include "host/experiments.h"

namespace {

using smt::JsonValue;

double number_or(const JsonValue& obj, const std::string& key,
                 double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

double map_value(const JsonValue* m, const char* key) {
  return m != nullptr && m->is_object() ? number_or(*m, key, 0.0) : 0.0;
}

const char* port_name(int p) {
  return smt::cpu::name(static_cast<smt::cpu::IssuePort>(p));
}
const char* reason_name(int r) {
  return smt::cpu::name(static_cast<smt::cpu::BlockReason>(r));
}

struct PcRow {
  uint64_t pc = 0;
  std::string disasm;
  double retired_uops = 0;
  double l1 = 0, l2 = 0;
  double ports[smt::cpu::kNumIssuePorts] = {};
  double stalls[smt::cpu::kNumBlockReasons] = {};
  double port_cycles = 0;  // sum over ports of uops / cap
};

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::optional<int> only_cpu;
  size_t top = 0;  // 0 = all
  bool predict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cpu") == 0 && i + 1 < argc) {
      only_cpu = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--predict") == 0) {
      predict = true;
    } else if (path == nullptr && argv[i][0] != '-') {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(
        stderr, "usage: %s <report.json> [--cpu N] [--top K] [--predict]\n",
        argv[0]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    smt::log::error("cannot open", {{"path", path}});
    return 3;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object()) {
    smt::log::error("does not parse as a JSON object", {{"path", path}});
    return 1;
  }
  const JsonValue* schema = v->find("schema");
  if (schema == nullptr || schema->string != "smt-run-report/3") {
    smt::log::error(
        "not a profiled report (schema /3 required; run the bench with "
        "SMT_BENCH_PROFILE=1)",
        {{"path", path}});
    return 1;
  }
  const JsonValue* prof = v->find("profile");
  const JsonValue* hotspots = prof != nullptr ? prof->find("hotspots")
                                              : nullptr;
  const JsonValue* occupancy =
      prof != nullptr ? prof->find("port_occupancy") : nullptr;
  const JsonValue* caps =
      prof != nullptr ? prof->find("port_caps_per_cycle") : nullptr;
  if (hotspots == nullptr || !hotspots->is_array() || occupancy == nullptr ||
      !occupancy->is_array() || caps == nullptr) {
    smt::log::error("malformed profile section", {{"path", path}});
    return 1;
  }
  const double cycles = number_or(*v, "cycles", 0.0);
  const JsonValue* workload = v->find("workload");
  std::printf("annotated profile: %s  (%.0f cycles)\n",
              workload != nullptr ? workload->string.c_str() : "?", cycles);

  // --predict: rebuild the report's workload and compute the static CPI
  // lower bound for each logical CPU's program.
  std::vector<smt::analysis::StaticPerf> predictions;
  if (predict) {
    const smt::host::ExperimentDef* def =
        workload != nullptr ? smt::host::find_experiment(workload->string)
                            : nullptr;
    if (def == nullptr) {
      smt::log::warn("--predict: workload not in the experiment registry",
                     {{"workload",
                       workload != nullptr ? workload->string : "?"}});
    } else {
      const std::unique_ptr<smt::core::Workload> wl = def->make();
      smt::core::Machine m;
      wl->setup(m);
      const smt::cpu::CoreConfig cfg;
      for (const smt::isa::Program& p : wl->programs()) {
        predictions.push_back(smt::analysis::static_cpi_bound(p, cfg));
      }
    }
  }

  double cap[smt::cpu::kNumIssuePorts];
  for (int p = 0; p < smt::cpu::kNumIssuePorts; ++p) {
    cap[p] = map_value(caps, port_name(p));
    if (cap[p] <= 0) cap[p] = 1;
  }

  for (size_t c = 0; c < hotspots->array.size(); ++c) {
    if (only_cpu.has_value() && static_cast<size_t>(*only_cpu) != c) continue;
    const JsonValue* pcs = hotspots->array[c].find("pcs");
    if (pcs == nullptr || !pcs->is_array()) continue;

    // Port-utilization table (Table-1 style, per logical CPU).
    const JsonValue* occ = occupancy->array[c].find("ports");
    smt::TextTable ports({"port", "uops", "uops/cycle", "util%"});
    for (int p = 0; p < smt::cpu::kNumIssuePorts; ++p) {
      const double uops = map_value(occ, port_name(p));
      ports.add_row({port_name(p), smt::fmt_count(static_cast<uint64_t>(uops)),
                     smt::fmt(cycles > 0 ? uops / cycles : 0.0, 3),
                     smt::fmt(cycles > 0 ? 100.0 * uops / (cap[p] * cycles)
                                         : 0.0,
                              1)});
    }
    std::printf("\n=== cpu%zu port occupancy ===\n%s", c,
                ports.to_string().c_str());

    if (c < predictions.size()) {
      const smt::analysis::StaticPerf& sp = predictions[c];
      std::printf("static advisor: cpi >= %.3f  (bound by %s, %s)\n",
                  sp.cpi_lb, sp.binding.c_str(),
                  sp.exact ? "exact loop structure" : "path-density fallback");
      if (sp.exact) {
        std::printf("  predicted: %llu instrs, %llu uops, >= %.0f cycles;"
                    " port uops:",
                    static_cast<unsigned long long>(sp.instrs),
                    static_cast<unsigned long long>(sp.uops), sp.cycles_lb);
        for (int p = 0; p < smt::cpu::kNumIssuePorts; ++p) {
          std::printf(" %s=%.0f", port_name(p), sp.port_uops[p]);
        }
        std::printf("\n");
      }
    }

    std::vector<PcRow> rows;
    double total_port_cycles = 0;
    for (const JsonValue& entry : pcs->array) {
      PcRow r;
      r.pc = static_cast<uint64_t>(number_or(entry, "pc", 0.0));
      const JsonValue* d = entry.find("disasm");
      if (d != nullptr) r.disasm = d->string;
      r.retired_uops = number_or(entry, "retired_uops", 0.0);
      r.l1 = number_or(entry, "l1_misses", 0.0);
      r.l2 = number_or(entry, "l2_misses", 0.0);
      for (int p = 0; p < smt::cpu::kNumIssuePorts; ++p) {
        r.ports[p] = map_value(entry.find("ports"), port_name(p));
        // A double-speed port delivers cap[p] uops per cycle, so uops/cap
        // estimates the cycles this PC had the port busy.
        r.port_cycles += r.ports[p] / cap[p];
      }
      for (int s = 0; s < smt::cpu::kNumBlockReasons; ++s) {
        r.stalls[s] = map_value(entry.find("stalls"), reason_name(s));
      }
      total_port_cycles += r.port_cycles;
      rows.push_back(std::move(r));
    }

    if (top > 0 && rows.size() > top) {
      // Keep the K busiest PCs, then restore program order.
      std::sort(rows.begin(), rows.end(), [](const PcRow& a, const PcRow& b) {
        return a.port_cycles > b.port_cycles;
      });
      rows.resize(top);
      std::sort(rows.begin(), rows.end(), [](const PcRow& a, const PcRow& b) {
        return a.pc < b.pc;
      });
    }

    smt::TextTable t({"pc  disasm", "cycles%", "uops", "alu0", "alu1",
                      "fp", "fp_move", "load", "store", "stalls", "L1miss",
                      "L2miss"});
    for (const PcRow& r : rows) {
      std::string stalls;
      for (int s = 0; s < smt::cpu::kNumBlockReasons; ++s) {
        if (r.stalls[s] <= 0) continue;
        if (!stalls.empty()) stalls += " ";
        stalls += std::string(reason_name(s)) + ":" +
                  smt::fmt_count(static_cast<uint64_t>(r.stalls[s]));
      }
      char pc_buf[16];
      std::snprintf(pc_buf, sizeof pc_buf, "%04llu",
                    static_cast<unsigned long long>(r.pc));
      t.add_row({std::string(pc_buf) + "  " + r.disasm,
                 smt::fmt(total_port_cycles > 0
                              ? 100.0 * r.port_cycles / total_port_cycles
                              : 0.0,
                          1),
                 smt::fmt_count(static_cast<uint64_t>(r.retired_uops)),
                 smt::fmt_count(static_cast<uint64_t>(r.ports[0])),
                 smt::fmt_count(static_cast<uint64_t>(r.ports[1])),
                 smt::fmt_count(static_cast<uint64_t>(r.ports[2])),
                 smt::fmt_count(static_cast<uint64_t>(r.ports[3])),
                 smt::fmt_count(static_cast<uint64_t>(r.ports[4])),
                 smt::fmt_count(static_cast<uint64_t>(r.ports[5])),
                 stalls.empty() ? "-" : stalls,
                 smt::fmt_count(static_cast<uint64_t>(r.l1)),
                 smt::fmt_count(static_cast<uint64_t>(r.l2))});
    }
    std::printf("\n=== cpu%zu hotspots%s ===\n%s", c,
                top > 0 ? " (top)" : "", t.to_string().c_str());
  }
  return 0;
}
