// smt_lint: the guest-program verifier's static front end.
//
// Usage:
//   smt_lint [NAME...]    lint every experiment in the host registry (or
//                         only the named ones): build each workload on a
//                         fresh machine, run analysis::lint_program over
//                         every emitted program with the workload's
//                         registered extents, then the cross-program
//                         concurrency checks (analysis::lint_concurrency).
//                         Exit 0 iff no error-severity diagnostics.
//   --werror              treat warnings as errors for the exit status
//   --format=json         emit a versioned smt-lint-report/1 document on
//                         stdout instead of the text listing
//   smt_lint --list       print the registry and the lint check set
//   smt_lint --selftest   emit one deliberately broken program per check
//                         and require the lint to catch each one (the
//                         negative-case gate CI runs)
//
// The dynamic half of the verifier (the happens-before race detector)
// runs inside the simulation; see core::RunOptions::race_detect and the
// selftest.race sweep job.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "common/json.h"
#include "common/log.h"
#include "core/machine.h"
#include "core/workload.h"
#include "host/experiments.h"
#include "isa/asm_builder.h"
#include "sync/primitives.h"

namespace {

using smt::analysis::Check;
using smt::analysis::Diagnostic;
using smt::analysis::Extent;
using smt::analysis::LintOptions;
using smt::analysis::Severity;
using smt::isa::AsmBuilder;
using smt::isa::BrCond;
using smt::isa::IReg;
using smt::isa::Label;
using smt::isa::Mem;

LintOptions options_for(const smt::core::Workload& w) {
  LintOptions opt;
  const smt::core::MemInfo mi = w.mem_info();
  for (const auto& r : mi.data) opt.extents.push_back({r.base, r.bytes, r.name});
  for (const auto& r : mi.sync) opt.extents.push_back({r.base, r.bytes, r.name});
  opt.extents_complete = mi.complete;
  return opt;
}

/// Merges per-program and cross-program diagnostics back into the
/// canonical order (the same key lint_program sorts by).
void merge(std::vector<Diagnostic>* into, std::vector<Diagnostic> extra) {
  into->insert(into->end(), std::make_move_iterator(extra.begin()),
               std::make_move_iterator(extra.end()));
  std::stable_sort(into->begin(), into->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.pc != b.pc) return a.pc < b.pc;
                     if (a.check != b.check) return a.check < b.check;
                     if (a.severity != b.severity) {
                       return a.severity < b.severity;
                     }
                     return a.message < b.message;
                   });
}

struct RegistryResult {
  size_t errors = 0;
  size_t warnings = 0;
  int programs = 0;
  int experiments = 0;
};

int lint_registry(const std::vector<std::string>& names, bool json,
                  bool werror) {
  RegistryResult total;
  smt::JsonWriter w;
  if (json) {
    w.begin_object();
    w.kv("schema", "smt-lint-report/1");
    w.key("experiments");
    w.begin_array();
  }
  for (const smt::host::ExperimentDef& def : smt::host::experiments()) {
    if (!names.empty() &&
        std::find(names.begin(), names.end(), def.name) == names.end()) {
      continue;
    }
    ++total.experiments;
    const std::unique_ptr<smt::core::Workload> wl = def.make();
    smt::core::Machine m;
    wl->setup(m);
    const LintOptions opt = options_for(*wl);
    const std::vector<smt::isa::Program>& programs = wl->programs();
    std::vector<std::vector<Diagnostic>> diags =
        smt::analysis::lint_concurrency(programs);
    diags.resize(programs.size());
    if (json) {
      w.begin_object();
      w.kv("name", def.name);
      w.key("programs");
      w.begin_array();
    }
    for (size_t i = 0; i < programs.size(); ++i) {
      const smt::isa::Program& p = programs[i];
      ++total.programs;
      merge(&diags[i], smt::analysis::lint_program(p, opt));
      total.errors +=
          smt::analysis::count_severity(diags[i], Severity::kError);
      total.warnings +=
          smt::analysis::count_severity(diags[i], Severity::kWarning);
      if (json) {
        w.begin_object();
        w.kv("name", p.name());
        w.key("diagnostics");
        w.begin_array();
        for (const Diagnostic& d : diags[i]) {
          w.begin_object();
          w.kv("check", smt::analysis::name(d.check));
          w.kv("severity", smt::analysis::name(d.severity));
          w.kv("pc", static_cast<uint64_t>(d.pc));
          w.kv("block", static_cast<uint64_t>(d.block));
          w.kv("message", d.message);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      } else if (!diags[i].empty()) {
        std::fputs(smt::analysis::format_diagnostics(p, diags[i]).c_str(),
                   stdout);
      }
    }
    if (json) {
      w.end_array();
      w.end_object();
    }
  }
  if (total.experiments == 0) {
    smt::log::error("no experiment matched");
    return 2;
  }
  const bool fail = total.errors > 0 || (werror && total.warnings > 0);
  if (json) {
    w.end_array();
    w.key("totals");
    w.begin_object();
    w.kv("errors", static_cast<uint64_t>(total.errors));
    w.kv("warnings", static_cast<uint64_t>(total.warnings));
    w.kv("programs", total.programs);
    w.kv("experiments", total.experiments);
    w.end_object();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf(
        "smt_lint: %zu error(s), %zu warning(s) across %d program(s) in %d "
        "experiment(s)\n",
        total.errors, total.warnings, total.programs, total.experiments);
  }
  return fail ? 1 : 0;
}

// ---------------------------------------------------------------------------
// --selftest: one seeded violation per check; the lint must catch each.
// ---------------------------------------------------------------------------

bool report_expected(const char* what, const smt::isa::Program& p,
                     const std::vector<Diagnostic>& diags, Check check,
                     const Severity* severity) {
  for (const Diagnostic& d : diags) {
    if (d.check == check && (severity == nullptr || d.severity == *severity)) {
      std::printf("caught %-18s %s", what,
                  smt::analysis::format_diagnostics(p, {d}).c_str());
      return true;
    }
  }
  smt::log::error("selftest check missed", {{"seed", what},
                                            {"expected",
                                             smt::analysis::name(check)}});
  std::fputs(smt::analysis::format_diagnostics(p, diags).c_str(), stderr);
  return false;
}

bool expect_check(const char* what, const smt::isa::Program& p,
                  const LintOptions& opt, Check check,
                  const Severity* severity = nullptr) {
  return report_expected(what, p, smt::analysis::lint_program(p, opt), check,
                         severity);
}

bool expect_concurrency(const char* what,
                        const std::vector<smt::isa::Program>& programs,
                        Check check) {
  const std::vector<std::vector<Diagnostic>> diags =
      smt::analysis::lint_concurrency(programs);
  bool ok = false;
  for (size_t i = 0; i < diags.size(); ++i) {
    for (const Diagnostic& d : diags[i]) {
      if (d.check == check) {
        if (!ok) {
          std::printf(
              "caught %-18s %s", what,
              smt::analysis::format_diagnostics(programs[i], {d}).c_str());
        }
        ok = true;
      }
    }
  }
  if (!ok) {
    smt::log::error("selftest check missed", {{"seed", what},
                                              {"expected",
                                               smt::analysis::name(check)}});
    for (size_t i = 0; i < diags.size(); ++i) {
      std::fputs(
          smt::analysis::format_diagnostics(programs[i], diags[i]).c_str(),
          stderr);
    }
  }
  return ok;
}

int selftest() {
  bool ok = true;
  constexpr Severity kWarn = Severity::kWarning;
  constexpr Severity kErr = Severity::kError;

  {  // Read of a never-written register.
    AsmBuilder a("seed.uninit-read");
    a.iaddi(IReg::R0, IReg::R1, 1);  // R1 never written
    a.exit();
    ok &= expect_check("uninit-read", a.take(), {}, Check::kUninitRead);
  }
  {  // Spin region asked for pause but its loop has none.
    AsmBuilder a("seed.missing-pause");
    a.imovi(IReg::R1, 1);
    a.begin_sync_region("spin", smt::isa::reg_bit(IReg::R0), /*is_spin=*/true,
                        /*wants_pause=*/true);
    const Label loop = a.here();
    a.load(IReg::R0, Mem::abs(0x8000));
    a.bri(BrCond::kNe, IReg::R0, 1, loop);  // no pause in the loop body
    a.end_sync_region();
    a.exit();
    ok &= expect_check("missing-pause", a.take(), {}, Check::kMissingPause,
                       &kWarn);
  }
  {  // Lock acquired but never released on the exit path.
    AsmBuilder a("seed.unpaired-lock");
    smt::sync::emit_lock_acquire(a, 0x8040, IReg::R2,
                                 smt::sync::SpinKind::kPause);
    a.exit();  // still holding the lock
    ok &= expect_check("lock-pairing", a.take(), {}, Check::kLockPairing);
  }
  {  // Emitter writes a register outside its declared may_write set.
    AsmBuilder a("seed.region-discipline");
    a.begin_sync_region("flag_set", smt::isa::reg_bit(IReg::R0));
    a.imovi(IReg::R0, 1);
    a.imovi(IReg::R5, 7);  // stray write: R5 is the kernel's register
    a.store(IReg::R0, Mem::abs(0x8000));
    a.end_sync_region();
    a.exit();
    ok &= expect_check("sync-region-write", a.take(), {},
                       Check::kSyncRegionWrite);
  }
  {  // Absolute-address store outside every registered extent.
    AsmBuilder a("seed.out-of-extent");
    a.imovi(IReg::R0, 1);
    a.store(IReg::R0, Mem::abs(0x9000));  // extents only cover 0x10000+
    a.exit();
    LintOptions opt;
    opt.extents.push_back({0x10000, 4096, "A"});
    opt.extents_complete = true;
    ok &= expect_check("out-of-extent", a.take(), opt,
                       Check::kOutOfExtentStore, &kErr);
  }
  {  // Off-by-one loop bound: the store's address RANGE (from the
     // interval analysis) runs one element past the extent.
    AsmBuilder a("seed.range-overrun");
    a.imovi(IReg::R0, 1);
    a.imovi(IReg::R1, 0x10000);
    const Label top = a.here();
    a.store(IReg::R0, Mem::bd(IReg::R1));
    a.iaddi(IReg::R1, IReg::R1, 8);
    a.bri(BrCond::kLe, IReg::R1, 0x10040, top);  // last store overruns
    a.exit();
    LintOptions opt;
    opt.extents.push_back({0x10000, 64, "A"});  // 8 slots: 0x10000..0x10038
    opt.extents_complete = true;
    ok &= expect_check("range-out-of-extent", a.take(), opt,
                       Check::kOutOfExtentStore, &kWarn);
  }
  {  // Code no path reaches.
    AsmBuilder a("seed.unreachable");
    const Label end = a.label();
    a.jmp(end);
    a.nop();  // skipped forever
    a.bind(end);
    a.exit();
    ok &= expect_check("unreachable", a.take(), {}, Check::kUnreachable,
                       &kWarn);
  }
  {  // A reachable path runs past the end of the program. The builder's
     // take() refuses to emit this, so construct the Program directly —
     // exactly the hand-built corner the CFG must survive.
    std::vector<smt::isa::Instr> code(1);
    code[0].op = smt::isa::Opcode::kNop;
    const smt::isa::Program p("seed.fall-off-end", std::move(code));
    ok &= expect_check("fall-off-end", p, {}, Check::kFallOffEnd);
  }
  {  // One CPU reaches a barrier episode its sibling never emits: the
     // sibling would spin forever waiting for the rendezvous.
    AsmBuilder a("seed.barrier-a");
    a.begin_sync_region("barrier_wait", 0);
    a.nop();
    a.end_sync_region();
    a.exit();
    AsmBuilder b("seed.barrier-b");
    b.nop();  // no barrier episode at all
    b.exit();
    std::vector<smt::isa::Program> programs;
    programs.push_back(a.take());
    programs.push_back(b.take());
    ok &= expect_concurrency("barrier-mismatch", programs,
                             Check::kBarrierMismatch);
  }
  {  // Two CPUs take the same pair of locks in opposite orders.
    AsmBuilder a("seed.lock-order-a");
    smt::sync::emit_lock_acquire(a, 0x8040, IReg::R2,
                                 smt::sync::SpinKind::kPause);
    smt::sync::emit_lock_acquire(a, 0x8080, IReg::R2,
                                 smt::sync::SpinKind::kPause);
    smt::sync::emit_lock_release(a, 0x8080, IReg::R2);
    smt::sync::emit_lock_release(a, 0x8040, IReg::R2);
    a.exit();
    AsmBuilder b("seed.lock-order-b");
    smt::sync::emit_lock_acquire(b, 0x8080, IReg::R2,
                                 smt::sync::SpinKind::kPause);
    smt::sync::emit_lock_acquire(b, 0x8040, IReg::R2,
                                 smt::sync::SpinKind::kPause);
    smt::sync::emit_lock_release(b, 0x8040, IReg::R2);
    smt::sync::emit_lock_release(b, 0x8080, IReg::R2);
    b.exit();
    std::vector<smt::isa::Program> programs;
    programs.push_back(a.take());
    programs.push_back(b.take());
    ok &= expect_concurrency("lock-order", programs, Check::kLockOrder);
  }

  return ok ? 0 : 1;
}

void list_registry() {
  std::puts("lint checks:");
  for (int c = 0; c < static_cast<int>(Check::kNumChecks); ++c) {
    std::printf("  %s\n", smt::analysis::name(static_cast<Check>(c)));
  }
  std::puts("experiments:");
  for (const smt::host::ExperimentDef& def : smt::host::experiments()) {
    std::printf("  %s\n", def.name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  bool json = false;
  bool werror = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) return selftest();
    if (std::strcmp(argv[i], "--list") == 0) {
      list_registry();
      return 0;
    }
    if (std::strcmp(argv[i], "--format=json") == 0) {
      json = true;
      continue;
    }
    if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
      continue;
    }
    if (argv[i][0] == '-') {
      std::fprintf(
          stderr,
          "usage: smt_lint [--list | --selftest | [--format=json] "
          "[--werror] NAME...]\n");
      return 2;
    }
    names.emplace_back(argv[i]);
  }
  return lint_registry(names, json, werror);
}
