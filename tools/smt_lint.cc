// smt_lint: the guest-program verifier's static front end.
//
// Usage:
//   smt_lint [NAME...]    lint every experiment in the host registry (or
//                         only the named ones): build each workload on a
//                         fresh machine, then run analysis::lint_program
//                         over every emitted program with the workload's
//                         registered extents. Exit 0 iff no findings.
//   smt_lint --list       print the registry and the lint rule set
//   smt_lint --selftest   emit one deliberately broken program per lint
//                         rule and require the lint to catch each one
//                         (the negative-case gate CI runs)
//
// The dynamic half of the verifier (the happens-before race detector)
// runs inside the simulation; see core::RunOptions::race_detect and the
// selftest.race sweep job.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "common/log.h"
#include "core/machine.h"
#include "core/workload.h"
#include "host/experiments.h"
#include "isa/asm_builder.h"
#include "sync/primitives.h"

namespace {

using smt::analysis::Extent;
using smt::analysis::LintFinding;
using smt::analysis::LintOptions;
using smt::analysis::LintRule;
using smt::isa::AsmBuilder;
using smt::isa::BrCond;
using smt::isa::IReg;
using smt::isa::Label;
using smt::isa::Mem;

LintOptions options_for(const smt::core::Workload& w) {
  LintOptions opt;
  const smt::core::MemInfo mi = w.mem_info();
  for (const auto& r : mi.data) opt.extents.push_back({r.base, r.bytes, r.name});
  for (const auto& r : mi.sync) opt.extents.push_back({r.base, r.bytes, r.name});
  opt.extents_complete = mi.complete;
  return opt;
}

int lint_registry(const std::vector<std::string>& names) {
  int findings = 0;
  int programs = 0;
  int experiments = 0;
  for (const smt::host::ExperimentDef& def : smt::host::experiments()) {
    if (!names.empty() &&
        std::find(names.begin(), names.end(), def.name) == names.end()) {
      continue;
    }
    ++experiments;
    const std::unique_ptr<smt::core::Workload> w = def.make();
    smt::core::Machine m;
    w->setup(m);
    const LintOptions opt = options_for(*w);
    for (const smt::isa::Program& p : w->programs()) {
      ++programs;
      const std::vector<LintFinding> f = smt::analysis::lint_program(p, opt);
      if (!f.empty()) {
        findings += static_cast<int>(f.size());
        std::fputs(smt::analysis::format_findings(p, f).c_str(), stdout);
      }
    }
  }
  if (experiments == 0) {
    smt::log::error("no experiment matched");
    return 2;
  }
  std::printf("smt_lint: %d finding(s) across %d program(s) in %d experiment(s)\n",
              findings, programs, experiments);
  return findings == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --selftest: one seeded violation per rule; the lint must catch each.
// ---------------------------------------------------------------------------

bool expect_rule(const char* what, const smt::isa::Program& p,
                 const LintOptions& opt, LintRule rule) {
  const std::vector<LintFinding> f = smt::analysis::lint_program(p, opt);
  for (const LintFinding& x : f) {
    if (x.rule == rule) {
      std::printf("caught %-18s %s\n", what,
                  smt::analysis::format_findings(p, {x}).c_str());
      return true;
    }
  }
  smt::log::error("selftest rule missed",
                  {{"seed", what}, {"expected", smt::analysis::name(rule)}});
  std::fputs(smt::analysis::format_findings(p, f).c_str(), stderr);
  return false;
}

int selftest() {
  bool ok = true;

  {  // Read of a never-written register.
    AsmBuilder a("seed.uninit-read");
    a.iaddi(IReg::R0, IReg::R1, 1);  // R1 never written
    a.exit();
    ok &= expect_rule("uninit-read", a.take(), {}, LintRule::kUninitRead);
  }
  {  // Spin region asked for pause but its loop has none.
    AsmBuilder a("seed.missing-pause");
    a.imovi(IReg::R1, 1);
    a.begin_sync_region("spin", smt::isa::reg_bit(IReg::R0), /*is_spin=*/true,
                        /*wants_pause=*/true);
    const Label loop = a.here();
    a.load(IReg::R0, Mem::abs(0x8000));
    a.bri(BrCond::kNe, IReg::R0, 1, loop);  // no pause in the loop body
    a.end_sync_region();
    a.exit();
    ok &= expect_rule("missing-pause", a.take(), {}, LintRule::kMissingPause);
  }
  {  // Lock acquired but never released on the exit path.
    AsmBuilder a("seed.unpaired-lock");
    smt::sync::emit_lock_acquire(a, 0x8040, IReg::R2,
                                 smt::sync::SpinKind::kPause);
    a.exit();  // still holding the lock
    ok &= expect_rule("lock-pairing", a.take(), {}, LintRule::kLockPairing);
  }
  {  // Emitter writes a register outside its declared may_write set.
    AsmBuilder a("seed.region-discipline");
    a.begin_sync_region("flag_set", smt::isa::reg_bit(IReg::R0));
    a.imovi(IReg::R0, 1);
    a.imovi(IReg::R5, 7);  // stray write: R5 is the kernel's register
    a.store(IReg::R0, Mem::abs(0x8000));
    a.end_sync_region();
    a.exit();
    ok &= expect_rule("sync-region-write", a.take(), {},
                      LintRule::kSyncRegionWrite);
  }
  {  // Absolute-address store outside every registered extent.
    AsmBuilder a("seed.out-of-extent");
    a.imovi(IReg::R0, 1);
    a.store(IReg::R0, Mem::abs(0x9000));  // extents only cover 0x10000+
    a.exit();
    LintOptions opt;
    opt.extents.push_back({0x10000, 4096, "A"});
    opt.extents_complete = true;
    ok &= expect_rule("out-of-extent", a.take(), opt,
                      LintRule::kOutOfExtentStore);
  }
  {  // Code no path reaches.
    AsmBuilder a("seed.unreachable");
    const Label end = a.label();
    a.jmp(end);
    a.nop();  // skipped forever
    a.bind(end);
    a.exit();
    ok &= expect_rule("unreachable", a.take(), {}, LintRule::kUnreachable);
  }
  {  // A reachable path runs past the end of the program. The builder's
     // take() refuses to emit this, so construct the Program directly —
     // exactly the hand-built corner the CFG must survive.
    std::vector<smt::isa::Instr> code(1);
    code[0].op = smt::isa::Opcode::kNop;
    const smt::isa::Program p("seed.fall-off-end", std::move(code));
    ok &= expect_rule("fall-off-end", p, {}, LintRule::kFallOffEnd);
  }

  return ok ? 0 : 1;
}

void list_registry() {
  std::puts("lint rules:");
  for (int r = 0; r <= static_cast<int>(LintRule::kFallOffEnd); ++r) {
    std::printf("  %s\n", smt::analysis::name(static_cast<LintRule>(r)));
  }
  std::puts("experiments:");
  for (const smt::host::ExperimentDef& def : smt::host::experiments()) {
    std::printf("  %s\n", def.name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) return selftest();
    if (std::strcmp(argv[i], "--list") == 0) {
      list_registry();
      return 0;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: smt_lint [--list | --selftest | NAME...]\n");
      return 2;
    }
    names.emplace_back(argv[i]);
  }
  return lint_registry(names);
}
